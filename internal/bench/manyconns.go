package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"adoc"
	"adoc/adocnet"
	"adoc/internal/datagen"
	"adoc/internal/netsim"
)

// The manyconns scenario measures what one connection costs at serving
// scale: N concurrent adocnet connections through a single Server over the
// in-memory fabric, reporting steady-state goroutines per connection
// (idle, and stalled mid-message with the full pipeline stood up) and heap
// allocations per message exchange. These are the numbers the shared
// worker/buffer pools exist to hold down, and CI pins them as budgets.

// DefaultManyConns is the connection count of the reported scenario.
const DefaultManyConns = 1000

// manyConnsResult carries the raw measurements of one run.
type manyConnsResult struct {
	conns       int
	idlePerConn float64 // goroutines per conn, parked between messages
	actPerConn  float64 // goroutines per conn, stalled mid-message
	allocsPerOp float64 // heap allocations per message exchange
	elapsed     time.Duration
	bytes       int64 // payload moved during the run
	negotiated  string
}

// manyConnsOptions is the fixed engine configuration of the scenario.
// Sizes are scaled down (4 KB buffers, 8 KB stream threshold) so a
// thousand pipelines fit comfortably, and Parallelism is pinned so the
// goroutine anatomy being measured does not depend on the host's core
// count.
func manyConnsOptions() adocnet.Options {
	return adocnet.Options{Options: adoc.Options{
		PacketSize:     1024,
		BufferSize:     4096,
		SmallThreshold: 8192,
		DisableProbe:   true,
		Parallelism:    4,
	}}
}

// manyConnsBufSize mirrors manyConnsOptions' BufferSize for workload
// sizing.
const manyConnsBufSize = 4096

// ManyConns runs the scenario at DefaultManyConns connections.
func ManyConns(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "manyconns",
		Title: "Per-connection cost at serving scale (shared worker/buffer pools)",
		Columns: []string{"conns", "goroutines/conn idle", "goroutines/conn active",
			"allocs/op", "elapsed(s)"},
	}
	cfg.logf("manyconns: %d connections through one server", DefaultManyConns)
	res, err := runManyConns(DefaultManyConns, 200, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("manyconns: %w", err)
	}
	t.AddRow(
		fmt.Sprintf("%d", res.conns),
		fmt.Sprintf("%.3f", res.idlePerConn),
		fmt.Sprintf("%.3f", res.actPerConn),
		fmt.Sprintf("%.1f", res.allocsPerOp),
		fmt.Sprintf("%.3f", res.elapsed.Seconds()),
	)
	t.AddResult(Result{
		Scenario:                fmt.Sprintf("manyconns/%d", res.conns),
		Bytes:                   res.bytes,
		ElapsedSeconds:          res.elapsed.Seconds(),
		ThroughputBps:           float64(res.bytes) / res.elapsed.Seconds(),
		Negotiated:              res.negotiated,
		Conns:                   res.conns,
		GoroutinesPerConnIdle:   res.idlePerConn,
		GoroutinesPerConnActive: res.actPerConn,
		AllocsPerOp:             res.allocsPerOp,
	})
	t.AddNote("idle = parked between messages; active = every connection stalled mid-message with its full send+receive pipeline stood up")
	t.AddNote("active includes the two application goroutines per connection (sender and handler); engine-owned goroutines are the remainder")
	t.AddNote("allocs/op = whole-process heap allocations per %d-byte stream message exchange, pools warm", 4*manyConnsBufSize)
	return t, nil
}

// gatedReader yields its data in two installments: limit bytes freely,
// then nothing until the gate closes. It holds a send pipeline stalled
// mid-message in a deterministic steady state.
type gatedReader struct {
	data  []byte
	off   int
	limit int // bytes released before the gate
	gate  chan struct{}
}

func (g *gatedReader) Read(p []byte) (int, error) {
	if g.off >= g.limit {
		<-g.gate
	}
	if g.off >= len(g.data) {
		return 0, io.EOF
	}
	end := len(g.data)
	if g.off < g.limit && end > g.limit {
		end = g.limit
	}
	n := copy(p, g.data[g.off:end])
	g.off += n
	return n, nil
}

// settledGoroutines polls runtime.NumGoroutine until the count holds still
// long enough to call it steady state, then returns it.
func settledGoroutines() int {
	last, stable := runtime.NumGoroutine(), 0
	deadline := time.Now().Add(5 * time.Second)
	for stable < 10 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n == last {
			stable++
		} else {
			last, stable = n, 0
		}
	}
	return last
}

// runManyConns stands up conns client/server connection pairs on one
// Server and measures the three per-connection costs. msgs is the sample
// size of the allocations measurement.
func runManyConns(conns, msgs int, seed int64) (manyConnsResult, error) {
	opts := manyConnsOptions()
	baseline := settledGoroutines()
	start := time.Now()

	nw := netsim.NewNetwork(netsim.Quiet(netsim.GbitLAN(seed)))
	lnRaw, err := nw.Listen("manyconns")
	if err != nil {
		return manyConnsResult{}, err
	}
	// The handler drains whatever arrives and echoes exactly the
	// warmup-sized chunks, so clients can confirm the round trip without
	// the server needing message boundaries.
	const warmupLen = 16
	srv := adocnet.NewServer(opts, func(c *adocnet.Conn) {
		for {
			chunk, err := c.ReadChunk()
			if err != nil {
				return
			}
			if len(chunk) == warmupLen {
				if _, err := c.WriteMessage(chunk); err != nil {
					return
				}
			}
		}
	})
	go srv.Serve(adocnet.NewListener(lnRaw, opts))
	defer srv.Close()

	var bytes int64
	clients := make([]*adocnet.Conn, 0, conns)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	warmup := datagen.ASCII(warmupLen, seed)
	back := make([]byte, warmupLen)
	for i := 0; i < conns; i++ {
		raw, err := nw.Dial("manyconns")
		if err != nil {
			return manyConnsResult{}, err
		}
		c, err := adocnet.Handshake(raw, opts)
		if err != nil {
			return manyConnsResult{}, fmt.Errorf("conn %d handshake: %w", i, err)
		}
		clients = append(clients, c)
		// One echo per connection proves both directions are live before
		// anything is measured.
		if _, err := c.WriteMessage(warmup); err != nil {
			return manyConnsResult{}, fmt.Errorf("conn %d warmup: %w", i, err)
		}
		if err := readFull(c, back); err != nil {
			return manyConnsResult{}, fmt.Errorf("conn %d warmup echo: %w", i, err)
		}
		bytes += 2 * warmupLen
	}

	// Phase 1 — idle: every connection parked between messages.
	idle := settledGoroutines() - baseline
	idlePerConn := float64(idle) / float64(conns)

	// Phase 2 — active: every connection stalled mid-message, so each
	// full send pipeline (emitter, reassembly) and receive pipeline
	// (reception loop, assembler, collector) is stood up and blocked in
	// its steady state. This is the shape a burst of large transfers
	// pins, and where per-engine worker goroutines used to multiply.
	stallLen := 3 * manyConnsBufSize
	payload := datagen.ASCII(stallLen, seed)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	sendErrs := make(chan error, conns)
	for _, c := range clients {
		wg.Add(1)
		go func(c *adocnet.Conn) {
			defer wg.Done()
			src := &gatedReader{data: payload, limit: manyConnsBufSize, gate: gate}
			if _, _, err := c.SendStream(src, int64(stallLen)); err != nil {
				sendErrs <- err
			}
		}(c)
	}
	active := settledGoroutines() - baseline
	actPerConn := float64(active) / float64(conns)

	close(gate)
	wg.Wait()
	close(sendErrs)
	for err := range sendErrs {
		return manyConnsResult{}, fmt.Errorf("stalled send: %w", err)
	}
	bytes += int64(conns) * int64(stallLen)

	// Phase 3 — allocations per message exchange on one connection while
	// the other conns-1 sit idle. Whole-process Mallocs delta, so the
	// server's receive side counts too — the honest per-op number.
	msgLen := 4 * manyConnsBufSize
	msgPayload := datagen.ASCII(msgLen, seed)
	before := srv.Stats().MsgsReceived
	// Warm the pools and let the stall-phase teardown finish first.
	if _, err := clients[0].WriteMessage(msgPayload); err != nil {
		return manyConnsResult{}, err
	}
	if err := waitMsgsReceived(srv, before+1); err != nil {
		return manyConnsResult{}, err
	}
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < msgs; i++ {
		if _, err := clients[0].WriteMessage(msgPayload); err != nil {
			return manyConnsResult{}, err
		}
	}
	if err := waitMsgsReceived(srv, before+1+int64(msgs)); err != nil {
		return manyConnsResult{}, err
	}
	runtime.ReadMemStats(&ms1)
	allocsPerOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(msgs)
	bytes += int64(msgs+1) * int64(msgLen)

	return manyConnsResult{
		conns:       conns,
		idlePerConn: idlePerConn,
		actPerConn:  actPerConn,
		allocsPerOp: allocsPerOp,
		elapsed:     time.Since(start),
		bytes:       bytes,
		negotiated:  clients[0].Negotiated().String(),
	}, nil
}

// waitMsgsReceived polls the server's aggregate counters until want
// messages have been fully received (or times out).
func waitMsgsReceived(srv *adocnet.Server, want int64) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().MsgsReceived >= want {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("server received %d messages, want %d", srv.Stats().MsgsReceived, want)
}
