package bench

import (
	"fmt"

	"adoc/internal/codec"
	"adoc/internal/datagen"
	"adoc/internal/des"
	"adoc/internal/netsim"
	"adoc/internal/stats"
)

// AblateBufferSize quantifies the §3.2 design choice: compressing in
// buffers costs ratio against whole-file compression, and 200 KB keeps
// the loss under 6% while still adapting quickly.
func AblateBufferSize(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	data := datagen.HarwellBoeing(60000, 6000, 12, cfg.Seed)
	if len(data) > 8<<20 {
		data = data[:8<<20]
	}
	level := codec.Level(7) // gzip 6, the classic default
	whole, used, err := codec.Compress(level, data)
	if err != nil || used != level {
		return nil, fmt.Errorf("whole-file compression failed: used=%v err=%v", used, err)
	}
	wholeRatio := codec.Ratio(len(data), len(whole))

	t := &Table{
		ID:      "ablate-buffer",
		Title:   "Compression-ratio degradation vs AdOC buffer size (gzip 6, HB matrix file)",
		Columns: []string{"buffer", "ratio", "degradation vs whole file"},
	}
	for _, bs := range []int{8 << 10, 25 << 10, 50 << 10, 100 << 10, 200 << 10, 400 << 10, 1 << 20} {
		var comp int
		for off := 0; off < len(data); off += bs {
			end := off + bs
			if end > len(data) {
				end = len(data)
			}
			blk, _, err := codec.Compress(level, data[off:end])
			if err != nil {
				return nil, err
			}
			comp += len(blk)
		}
		r := codec.Ratio(len(data), comp)
		t.AddRow(fmt.Sprintf("%d KB", bs>>10),
			fmt.Sprintf("%.3f", r),
			fmt.Sprintf("%.2f%%", (wholeRatio-r)/wholeRatio*100))
	}
	t.AddRow("whole file", fmt.Sprintf("%.3f", wholeRatio), "0.00%")
	t.AddNote("paper claim to check: at 200 KB the degradation stays under 6%%")
	return t, nil
}

// AblateDivergence compares transfers to a receiver 50x slower than the
// sender with the divergence guard on and off (§5 "Compression level
// divergence"). Model mode.
func AblateDivergence(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "ablate-divergence",
		Title:   "Slow receiver (50x slower CPU): divergence guard on vs off (s per 16 MB, ASCII)",
		Columns: []string{"network", "guard on", "guard off", "posix raw"},
	}
	for _, prof := range []netsim.Profile{netsim.Quiet(netsim.LAN100(cfg.Seed)), netsim.Quiet(netsim.Renater(cfg.Seed))} {
		on, err := des.NewModelWith(prof, datagen.KindASCII, cfg.Calib)
		if err != nil {
			return nil, err
		}
		off, err := des.NewModelWith(prof, datagen.KindASCII, cfg.Calib)
		if err != nil {
			return nil, err
		}
		on.ReceiverCPU = 0.02
		off.ReceiverCPU = 0.02
		off.DisableDivergenceGuard = true
		size := int64(16 << 20)
		t.AddRow(prof.Name,
			fmt.Sprintf("%.3f", on.Transfer(size).Duration.Seconds()),
			fmt.Sprintf("%.3f", off.Transfer(size).Duration.Seconds()),
			fmt.Sprintf("%.3f", on.RawTransfer(size).Seconds()))
	}
	t.AddNote("paper claim to check: with the guard the level is effectively disabled when the receiver cannot keep up; without it the level diverges upward and the transfer stalls behind the decompressor")
	return t, nil
}

// AblateProbe compares the Gbit behaviour with the 256 KB bandwidth probe
// enabled and disabled (§5 "Fast Networks"). Model mode.
func AblateProbe(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	prof := netsim.Quiet(netsim.GbitLAN(cfg.Seed))
	t := &Table{
		ID:      "ablate-probe",
		Title:   "Gbit LAN: bandwidth probe on vs off (s, ASCII)",
		Columns: []string{"size", "probe on", "probe off", "posix raw"},
	}
	for _, size := range []int64{1 << 20, 8 << 20, 32 << 20} {
		on, err := des.NewModelWith(prof, datagen.KindASCII, cfg.Calib)
		if err != nil {
			return nil, err
		}
		off, err := des.NewModelWith(prof, datagen.KindASCII, cfg.Calib)
		if err != nil {
			return nil, err
		}
		off.DisableProbe = true
		t.AddRow(fmt.Sprintf("%d MB", size>>20),
			fmt.Sprintf("%.4f", on.Transfer(size).Duration.Seconds()),
			fmt.Sprintf("%.4f", off.Transfer(size).Duration.Seconds()),
			fmt.Sprintf("%.4f", on.RawTransfer(size).Seconds()))
	}
	t.AddNote("paper claim to check: with the probe AdOC rides at link speed (bypass); without it the era CPU cannot feed a Gbit link and the transfer falls behind raw")
	return t, nil
}

// AblateAdaptivity compares the adaptive controller against fixed levels
// across the paper's networks (model mode) — why adapt at all.
func AblateAdaptivity(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	size := int64(16 << 20)
	t := &Table{
		ID:      "ablate-adapt",
		Title:   "Adaptive vs fixed compression level (s per 16 MB, ASCII)",
		Columns: []string{"network", "posix", "adaptive", "fixed lzf", "fixed gzip6", "fixed gzip9"},
	}
	for _, prof := range []netsim.Profile{
		netsim.Quiet(netsim.GbitLAN(cfg.Seed)),
		netsim.Quiet(netsim.LAN100(cfg.Seed)),
		netsim.Quiet(netsim.Renater(cfg.Seed)),
		netsim.Quiet(netsim.Internet(cfg.Seed)),
	} {
		mk := func(min, max codec.Level, probe bool) (float64, error) {
			m, err := des.NewModelWith(prof, datagen.KindASCII, cfg.Calib)
			if err != nil {
				return 0, err
			}
			m.MinLevel, m.MaxLevel = min, max
			m.DisableProbe = !probe
			return m.Transfer(size).Duration.Seconds(), nil
		}
		adaptive, err := mk(codec.MinLevel, codec.MaxLevel, true)
		if err != nil {
			return nil, err
		}
		lzf, err := mk(1, 1, false)
		if err != nil {
			return nil, err
		}
		g6, err := mk(7, 7, false)
		if err != nil {
			return nil, err
		}
		g9, err := mk(10, 10, false)
		if err != nil {
			return nil, err
		}
		m, _ := des.NewModelWith(prof, datagen.KindASCII, cfg.Calib)
		t.AddRow(prof.Name,
			fmt.Sprintf("%.3f", m.RawTransfer(size).Seconds()),
			fmt.Sprintf("%.3f", adaptive),
			fmt.Sprintf("%.3f", lzf),
			fmt.Sprintf("%.3f", g6),
			fmt.Sprintf("%.3f", g9))
	}
	t.AddNote("claim to check: no fixed level wins on every network; the adaptive controller tracks the best fixed choice per network without knowing it in advance")
	return t, nil
}

// AblateIncompressibleGuard measures sending random data with the
// incompressible guard on and off (live mode: the wasted compression CPU
// is real).
func AblateIncompressibleGuard(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	size := int64(2 << 20)
	if size > cfg.MaxSize {
		size = cfg.MaxSize
	}
	prof := netsim.Quiet(netsim.LAN100(cfg.Seed))
	t := &Table{
		ID:      "ablate-incompressible",
		Title:   fmt.Sprintf("Random data over 100 Mbit LAN, %d MB: incompressible guard on vs off", size>>20),
		Columns: []string{"variant", "time (s)", "wire/raw"},
	}
	for _, disabled := range []bool{false, true} {
		var s stats.Series
		var ratio float64
		data := datagen.Incompressible(int(size), cfg.Seed)
		for r := 0; r < cfg.Reps; r++ {
			p := prof
			p.Seed = cfg.Seed + int64(r)*31
			sec, wr, err := liveGuardedSend(p, data, disabled)
			if err != nil {
				return nil, err
			}
			s.Add(sec)
			ratio = wr
		}
		name := "guard on"
		if disabled {
			name = "guard off (forced gzip 6)"
		}
		t.AddRow(name, fmt.Sprintf("%.3f", s.Min()), fmt.Sprintf("%.4f", ratio))
	}
	t.AddNote("guard off is emulated by forcing min=max=gzip6 so every buffer is compressed in vain; the guard instead pins level 0 after the first poor packet")
	return t, nil
}

// AblatePacketSize varies the FIFO packet size (the paper's 8 KB, §3.2):
// smaller packets give the controller finer δ signals but add framing and
// synchronization overhead. Model mode over the LAN profile.
func AblatePacketSize(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	size := int64(16 << 20)
	t := &Table{
		ID:      "ablate-packet",
		Title:   "Transfer time vs FIFO packet size (s per 16 MB ASCII, 100 Mbit LAN)",
		Columns: []string{"packet", "time (s)", "wire (MB)"},
	}
	for _, ps := range []int{1 << 10, 4 << 10, 8 << 10, 32 << 10, 128 << 10} {
		m, err := des.NewModelWith(netsim.Quiet(netsim.LAN100(cfg.Seed)), datagen.KindASCII, cfg.Calib)
		if err != nil {
			return nil, err
		}
		m.Limits.PacketSize = ps
		r := m.Transfer(size)
		t.AddRow(fmt.Sprintf("%d KB", ps>>10),
			fmt.Sprintf("%.3f", r.Duration.Seconds()),
			fmt.Sprintf("%.2f", float64(r.WireBytes)/(1<<20)))
	}
	t.AddNote("the Figure-2 thresholds (10/20/30 packets) assume 8 KB packets; other sizes shift the bands the controller reacts to")
	return t, nil
}

// AblateQueueCapacity varies the emission FIFO bound: a tiny queue starves
// the emitter and pins the controller low; a huge one buffers the whole
// message and decouples the signal from the network. Model mode.
func AblateQueueCapacity(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	size := int64(16 << 20)
	t := &Table{
		ID:      "ablate-queue",
		Title:   "Transfer time vs FIFO capacity (s per 16 MB ASCII, Renater WAN)",
		Columns: []string{"capacity (packets)", "time (s)", "wire (MB)"},
	}
	for _, qc := range []int{16, 64, 256, 1024, 4096} {
		m, err := des.NewModelWith(netsim.Quiet(netsim.Renater(cfg.Seed)), datagen.KindASCII, cfg.Calib)
		if err != nil {
			return nil, err
		}
		m.QueueCapacity = qc
		r := m.Transfer(size)
		t.AddRow(fmt.Sprintf("%d", qc),
			fmt.Sprintf("%.3f", r.Duration.Seconds()),
			fmt.Sprintf("%.2f", float64(r.WireBytes)/(1<<20)))
	}
	t.AddNote("capacities >= the n>=30 band leave the control law unaffected; the bound exists to cap sender memory (paper leaves the queue unbounded)")
	return t, nil
}
