package bench

import (
	"fmt"
	"time"

	"adoc"
)

// nullSink is an infinitely fast link: writes vanish, reads block. It
// isolates the sender pipeline so PipelineThroughput measures compression
// throughput, not the network.
type nullSink struct {
	block chan struct{}
}

func newNullSink() *nullSink { return &nullSink{block: make(chan struct{})} }

func (s *nullSink) Write(p []byte) (int, error) { return len(p), nil }

func (s *nullSink) Read(p []byte) (int, error) {
	<-s.block
	return 0, fmt.Errorf("bench: sink closed")
}

func (s *nullSink) Close() error {
	close(s.block)
	return nil
}

// PipelineThroughput measures the sender pipeline alone: data is sent reps
// times at a fixed compression level (min == max pins the adapter, so the
// measurement isolates the worker pool) over an infinitely fast sink, and
// the raw throughput in bytes per second is returned. parallelism 1 is the
// paper's sequential pipeline; higher values shard compression across that
// many workers.
func PipelineThroughput(parallelism int, level adoc.Level, data []byte, reps int) (bps float64, err error) {
	if reps <= 0 {
		reps = 1
	}
	sink := newNullSink()
	defer sink.Close()
	opts := adoc.DefaultOptions()
	opts.Parallelism = parallelism
	opts.DisableProbe = true
	conn, err := adoc.NewConn(sink, opts)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := conn.WriteMessageLevels(data, level, level); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(len(data)) * float64(reps) / elapsed.Seconds(), nil
}

// PipelineSpeedup returns the throughput ratio of the parallel pipeline
// over the sequential one on the same data at the same fixed level — the
// scaling number the parallel-pipeline work is judged by.
func PipelineSpeedup(parallelism int, level adoc.Level, data []byte, reps int) (float64, error) {
	seq, err := PipelineThroughput(1, level, data, reps)
	if err != nil {
		return 0, err
	}
	par, err := PipelineThroughput(parallelism, level, data, reps)
	if err != nil {
		return 0, err
	}
	if seq <= 0 {
		return 0, fmt.Errorf("bench: sequential throughput not positive")
	}
	return par / seq, nil
}
