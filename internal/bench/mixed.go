package bench

import (
	"fmt"
	"time"

	"adoc"
	"adoc/internal/datagen"
	"adoc/internal/wire"
)

// MixedContentRun is one measurement of the sender pipeline on a
// content-aware workload: throughput over an infinitely fast sink with
// the codec pinned to DEFLATE, plus the wire accounting that proves the
// bypass never inflates the stream.
type MixedContentRun struct {
	// ThroughputBps is raw payload bytes per second through the pipeline.
	ThroughputBps float64
	// RawBytes and WireBytes are the engine's send-side counters.
	RawBytes, WireBytes int64
	// EntropyBypasses counts buffers the probe shipped raw.
	EntropyBypasses int64
}

// mixedLevel pins the controller: every adaptation buffer would hit
// DEFLATE 5 if the entropy probe did not intervene, so the measurement
// isolates exactly the cost the bypass removes.
const mixedLevel = adoc.Level(6)

// MixedContentThroughput pushes data through the sender pipeline reps
// times at a pinned DEFLATE level over an infinitely fast sink, with the
// entropy bypass on or off, and reports throughput plus wire accounting.
// parallelism shards compression as in PipelineThroughput.
func MixedContentThroughput(parallelism int, data []byte, reps int, disableBypass bool) (MixedContentRun, error) {
	if reps <= 0 {
		reps = 1
	}
	sink := newNullSink()
	defer sink.Close()
	opts := adoc.DefaultOptions()
	opts.Parallelism = parallelism
	opts.DisableProbe = true
	opts.DisableEntropyBypass = disableBypass
	conn, err := adoc.NewConn(sink, opts)
	if err != nil {
		return MixedContentRun{}, err
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := conn.WriteMessageLevels(data, mixedLevel, mixedLevel); err != nil {
			return MixedContentRun{}, err
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	st := conn.Stats()
	return MixedContentRun{
		ThroughputBps:   float64(len(data)) * float64(reps) / elapsed.Seconds(),
		RawBytes:        st.RawSent,
		WireBytes:       st.WireSent,
		EntropyBypasses: st.Controller.EntropyBypasses,
	}, nil
}

// MixedContentSpeedup returns the throughput ratio of the bypass-enabled
// pipeline over the bypass-disabled one (PR-4 behavior) on the same data —
// the number the content-aware work is judged by.
func MixedContentSpeedup(parallelism int, data []byte, reps int) (float64, error) {
	off, err := MixedContentThroughput(parallelism, data, reps, true)
	if err != nil {
		return 0, err
	}
	on, err := MixedContentThroughput(parallelism, data, reps, false)
	if err != nil {
		return 0, err
	}
	if off.ThroughputBps <= 0 {
		return 0, fmt.Errorf("bench: baseline throughput not positive")
	}
	return on.ThroughputBps / off.ThroughputBps, nil
}

// MaxStreamFramingOverhead bounds the framing bytes one stream message may
// add on top of rawLen payload bytes when every group ships raw, derived
// from the wire constants (never from literals, so protocol changes show
// up here).
func MaxStreamFramingOverhead(rawLen, bufferSize, packetSize int) int64 {
	groups := (rawLen + bufferSize - 1) / bufferSize
	packets := (rawLen + packetSize - 1) / packetSize
	return int64(wire.StreamHeaderLen + wire.FrameMsgEndLen +
		groups*(wire.FrameGroupBeginLen+wire.FrameGroupEndLen+wire.FramePacketOverhead) +
		packets*wire.FramePacketOverhead)
}

// MixedContent is the content-aware workload experiment: for each of the
// pre-compressed and interleaved workloads it measures pipeline
// throughput with the entropy bypass off (old behavior) and on, pinned
// at Parallelism 4 (the configuration the acceptance criterion names),
// reporting the speedup and the wire/raw ratio.
func MixedContent(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	size := int(cfg.MaxSize)
	if size > 8<<20 {
		size = 8 << 20
	}
	t := &Table{
		ID:    "mixed",
		Title: "Content-aware entropy bypass on pre-compressed and mixed workloads (pipeline, pinned DEFLATE)",
		Columns: []string{"workload", "bypass", "throughput MB/s", "wire/raw",
			"bypassed buffers", "speedup"},
	}
	for _, kind := range datagen.MixedKinds() {
		data := datagen.ByKind(kind, size, cfg.Seed)
		var base float64
		for _, bypass := range []bool{false, true} {
			run, err := MixedContentThroughput(4, data, cfg.Reps, !bypass)
			if err != nil {
				return nil, fmt.Errorf("mixed %s bypass=%v: %w", kind, bypass, err)
			}
			speedup := "-"
			if !bypass {
				base = run.ThroughputBps
			} else if base > 0 {
				speedup = fmt.Sprintf("%.2fx", run.ThroughputBps/base)
			}
			t.AddRow(string(kind),
				map[bool]string{false: "off", true: "on"}[bypass],
				fmt.Sprintf("%.1f", run.ThroughputBps/1e6),
				fmt.Sprintf("%.3f", float64(run.WireBytes)/float64(run.RawBytes)),
				fmt.Sprintf("%d", run.EntropyBypasses),
				speedup,
			)
			t.AddResult(Result{
				Scenario:       fmt.Sprintf("mixed/%s/bypass=%v", kind, bypass),
				Bytes:          run.RawBytes,
				ElapsedSeconds: float64(run.RawBytes) / run.ThroughputBps,
				ThroughputBps:  run.ThroughputBps,
				WireBytes:      run.WireBytes,
			})
		}
	}
	t.AddNote("bypass=off is PR-4 behavior: every buffer goes through DEFLATE and relies on the no-gain fallback")
	t.AddNote("wire/raw stays ≈ 1.0 (never above 1 + framing) on pre-compressed data; the win is CPU, not bytes")
	return t, nil
}
