package bench

import (
	"runtime"
	"testing"

	"adoc"
	"adoc/internal/datagen"
)

// TestMixedContentThroughputRuns smoke-tests the harness on every machine:
// both bypass settings must run, report positive rates, and account their
// wire bytes.
func TestMixedContentThroughputRuns(t *testing.T) {
	data := datagen.ByKind(datagen.KindPreCompressed, 2<<20, 1)
	for _, disable := range []bool{false, true} {
		run, err := MixedContentThroughput(2, data, 1, disable)
		if err != nil {
			t.Fatalf("disableBypass=%v: %v", disable, err)
		}
		if run.ThroughputBps <= 0 || run.RawBytes != int64(len(data)) {
			t.Fatalf("disableBypass=%v: run = %+v", disable, run)
		}
		if disable && run.EntropyBypasses != 0 {
			t.Fatalf("bypass disabled but %d bypasses recorded", run.EntropyBypasses)
		}
		if !disable && run.EntropyBypasses == 0 {
			t.Fatalf("bypass enabled but never fired on pre-compressed data")
		}
	}
}

// TestEntropyBypassAcceptance is the content-aware acceptance check: on a
// ≥4-core machine at Parallelism 4, the entropy bypass must push the
// pre-compressed workload at least 1.3× as fast as PR-4 behavior
// (bypass off), and the wire must never exceed the raw size by more than
// the framing overhead. Skipped where the hardware cannot show the effect.
func TestEntropyBypassAcceptance(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 cores, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("measurement skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the measurement; CI runs this without -race")
	}
	// The headline 1.3x floor is pinned on the pure pre-compressed
	// workload (it measures ≈ 3.6x in practice). The interleaved workload
	// is only one-third bypassable buffers, so its amortized floor is a
	// no-regression bound rather than a speedup claim.
	for _, tc := range []struct {
		kind datagen.Kind
		want float64
	}{
		{datagen.KindPreCompressed, 1.3},
		{datagen.KindMixed, 1.05},
	} {
		tc := tc
		t.Run(string(tc.kind), func(t *testing.T) {
			data := datagen.ByKind(tc.kind, 8<<20, 1)
			want := tc.want
			var best float64
			// Two attempts absorb scheduler noise on shared CI runners.
			for attempt := 0; attempt < 2; attempt++ {
				s, err := MixedContentSpeedup(4, data, 2)
				if err != nil {
					t.Fatal(err)
				}
				if s > best {
					best = s
				}
				if best >= want {
					break
				}
			}
			if best < want {
				t.Fatalf("entropy bypass speedup %.2fx on %s, want >= %.2fx", best, tc.kind, want)
			}
			t.Logf("entropy bypass speedup on %s: %.2fx", tc.kind, best)
		})
	}
}

// TestBypassNeverInflatesWire: on the pure pre-compressed workload the
// wire size must stay within the framing overhead of raw — the
// gzip-style guarantee, now enforced before compression is even tried.
func TestBypassNeverInflatesWire(t *testing.T) {
	opts := adoc.DefaultOptions()
	eff, err := opts.Effective()
	if err != nil {
		t.Fatal(err)
	}
	data := datagen.ByKind(datagen.KindPreCompressed, 4<<20, 3)
	run, err := MixedContentThroughput(4, data, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	allowed := MaxStreamFramingOverhead(len(data), eff.BufferSize, eff.PacketSize)
	if run.WireBytes > run.RawBytes+allowed {
		t.Fatalf("wire %d exceeds raw %d + framing bound %d", run.WireBytes, run.RawBytes, allowed)
	}
}

// TestMixedContentExperiment smoke-runs the adocbench experiment end to
// end and checks the machine-readable results are well-formed.
func TestMixedContentExperiment(t *testing.T) {
	tab, err := MixedContent(Config{Mode: ModeLive, MaxSize: 1 << 20, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2*len(datagen.MixedKinds()) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), 2*len(datagen.MixedKinds()))
	}
	if len(tab.Results) != len(tab.Rows) {
		t.Fatalf("results = %d, want %d", len(tab.Results), len(tab.Rows))
	}
	for _, r := range tab.Results {
		if r.Bytes <= 0 || r.ThroughputBps <= 0 || r.WireBytes <= 0 {
			t.Fatalf("malformed result %+v", r)
		}
	}
}
