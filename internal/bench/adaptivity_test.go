package bench

import (
	"io"
	"testing"
	"time"

	"adoc"
	"adoc/internal/datagen"
	"adoc/internal/netsim"
)

// throttledSource yields endless compressible bytes at a bounded rate —
// an application producing data slower than a fast network but much
// faster than a congested one.
type throttledSource struct {
	pattern []byte
	off     int
	bps     float64
	chunk   int
}

func (s *throttledSource) Read(p []byte) (int, error) {
	n := min(len(p), s.chunk)
	for i := 0; i < n; i++ {
		p[i] = s.pattern[(s.off+i)%len(s.pattern)]
	}
	s.off += n
	time.Sleep(time.Duration(float64(n) / s.bps * float64(time.Second)))
	return n, nil
}

// TestControllerAdaptsToBandwidthDrop is the adaptivity regression test
// over a time-varying link: one long transfer rides through a scheduled
// bandwidth drop. While the network outruns the (throttled) source, the
// emission FIFO stays empty and the controller sits at the minimum
// level; when the link collapses mid-message, the FIFO backs up and
// Snapshot().Level must move up — the paper's core feedback loop,
// exercised end to end through the real engine. The adaptation state
// lives per message (each send owns its FIFO), which is why the test
// streams one message across the drop rather than many small ones.
func TestControllerAdaptsToBandwidthDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock adaptation run")
	}
	const (
		stepAt   = 400 * time.Millisecond
		runFor   = 1600 * time.Millisecond
		dropTo   = 0.005 // 200 MB/s -> 1 MB/s
		settleBy = 300 * time.Millisecond
		warmup   = 150 * time.Millisecond
		// ~20 MB/s offered load: far below the fast link (queue empty,
		// level pinned at the minimum), far above the congested one
		// (queue fills, the controller must climb).
		sourceBps = 20e6
	)
	prof := netsim.Profile{
		Name:         "fast-then-congested",
		BandwidthBps: 200e6,
		Latency:      200 * time.Microsecond,
		MTU:          16 * 1024,
		SocketBuf:    512 * 1024,
	}
	start := time.Now()
	a, b := netsim.Pair(netsim.StepDown(prof, stepAt, dropTo))
	defer a.Close()
	defer b.Close()

	opts := adoc.DefaultOptions()
	opts.DisableProbe = true // a probe prefix would blur the phases
	sender, err := adoc.NewConn(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		// Drain whatever arrives; the receiver is never the bottleneck.
		receiver, err := adoc.NewConn(b, adoc.DefaultOptions())
		if err != nil {
			return
		}
		io.Copy(io.Discard, receiver)
	}()

	// One endless message; it dies with the connection when the test is
	// done sampling.
	src := &throttledSource{pattern: datagen.ASCII(1<<20, 42), bps: sourceBps, chunk: 32 * 1024}
	sendDone := make(chan struct{})
	go func() {
		defer close(sendDone)
		sender.SendStream(src, -1)
	}()

	var earlyMax, lateMax adoc.Level
	for time.Since(start) < runFor {
		lvl := sender.Stats().Adapt.Level
		elapsed := time.Since(start)
		switch {
		case elapsed > warmup && elapsed < stepAt:
			// Skip the cold start: the first buffers race ahead of the
			// emission loop and briefly queue regardless of the network.
			if lvl > earlyMax {
				earlyMax = lvl
			}
		case elapsed > stepAt+settleBy:
			if lvl > lateMax {
				lateMax = lvl
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	a.Close() // ends the endless send
	<-sendDone

	// Direction, not magnitude: after the drop the controller must sit
	// strictly higher than it ever did while the link was fast.
	if lateMax <= earlyMax {
		t.Fatalf("controller did not adapt: max level %d before the bandwidth drop, %d after",
			earlyMax, lateMax)
	}
	t.Logf("level moved %d -> %d across a %.0fx bandwidth drop", earlyMax, lateMax, 1/dropTo)
}
