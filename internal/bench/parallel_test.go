package bench

import (
	"runtime"
	"testing"

	"adoc"
	"adoc/internal/datagen"
)

// TestPipelineThroughputRuns smoke-tests the measurement harness itself on
// every machine: both pipelines must run and report a positive rate.
func TestPipelineThroughputRuns(t *testing.T) {
	data := datagen.ByKind(datagen.KindASCII, 2<<20, 1)
	for _, p := range []int{1, 4} {
		bps, err := PipelineThroughput(p, adoc.Level(7), data, 1)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if bps <= 0 {
			t.Fatalf("parallelism %d: non-positive throughput %f", p, bps)
		}
	}
}

// TestParallelPipelineSpeedup is the scaling acceptance check: on a ≥4-core
// machine, Parallelism = 4 must push compressible data through a fixed
// DEFLATE level at least 1.5× as fast as the sequential pipeline. Skipped
// where the hardware cannot show the effect.
func TestParallelPipelineSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 cores to demonstrate compression scaling, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the scaling measurement; CI runs this without -race")
	}
	data := datagen.ByKind(datagen.KindASCII, 8<<20, 1)
	const want = 1.5
	var best float64
	// Two attempts absorb scheduler noise on shared CI runners.
	for attempt := 0; attempt < 2; attempt++ {
		s, err := PipelineSpeedup(4, adoc.Level(7), data, 3)
		if err != nil {
			t.Fatal(err)
		}
		if s > best {
			best = s
		}
		if best >= want {
			break
		}
	}
	if best < want {
		t.Fatalf("Parallelism 4 speedup %.2fx, want >= %.1fx", best, want)
	}
	t.Logf("Parallelism 4 speedup: %.2fx", best)
}
