package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"adoc/adocrpc"
	"adoc/internal/datagen"
	"adoc/internal/netsim"
)

// rpcLoadPoint is one row of the RPC load experiment: a burst of
// concurrent echo calls through an adocrpc pool over one simulated
// network.
type rpcLoadPoint struct {
	prof        netsim.Profile
	concurrency int
	calls       int // total calls across all workers
	payload     int // request payload bytes (response echoes it back)
}

// rpcLoadPoints scales the workload to each network: enough traffic for
// the adaptive pipeline to engage, small enough that the WAN rows finish
// in seconds. maxPayload (from Config.MaxSize) caps the per-call
// payload for CI-speed runs.
func rpcLoadPoints(seed int64, maxPayload int64) []rpcLoadPoint {
	capped := func(n int) int {
		if maxPayload > 0 && int64(n) > maxPayload {
			return int(maxPayload)
		}
		return n
	}
	// Payloads are sized so concurrent calls coalesce into mux batches of
	// several 200 KB adaptation buffers — small bursty payloads never
	// give the per-message controller a queue to react to.
	return []rpcLoadPoint{
		{prof: netsim.Quiet(netsim.LAN100(seed)), concurrency: 16, calls: 64, payload: capped(256 << 10)},
		{prof: netsim.Quiet(netsim.Renater(seed)), concurrency: 16, calls: 32, payload: capped(128 << 10)},
	}
}

// RPCLoad runs the adocrpc stack — client pool, mux sessions, server
// dispatch — under concurrent echo load over the paper's simulated
// LAN and WAN, reporting end-to-end request throughput and the wire
// bytes the shared compression saved. It always runs live (the scenario
// IS the real engine; there is no model of it).
func RPCLoad(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "rpcload",
		Title: "Concurrent RPC load through adocrpc (pooled compressed sessions)",
		Columns: []string{"network", "calls", "conc", "payload", "elapsed(s)",
			"req/s", "payload MB/s", "wire/raw"},
	}
	for _, pt := range rpcLoadPoints(cfg.Seed, cfg.MaxSize) {
		res, err := runRPCLoad(pt, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("rpcload %s: %w", pt.prof.Name, err)
		}
		t.AddRow(pt.prof.Name,
			fmt.Sprintf("%d", pt.calls),
			fmt.Sprintf("%d", pt.concurrency),
			fmt.Sprintf("%d", pt.payload),
			fmt.Sprintf("%.3f", res.ElapsedSeconds),
			fmt.Sprintf("%.1f", float64(pt.calls)/res.ElapsedSeconds),
			fmt.Sprintf("%.2f", res.ThroughputBps/1e6),
			fmt.Sprintf("%.2f", float64(res.WireBytes)/float64(res.Bytes)),
		)
		t.AddResult(res)
	}
	t.AddNote("each call is one mux stream of a pooled session (max %d per target); all calls share the pool's adaptive controllers", adocrpc.DefaultMaxSessions)
	t.AddNote("wire/raw below 1.0 means the shared compression pipeline engaged on the aggregate RPC traffic")
	return t, nil
}

// runRPCLoad stands the full stack up over one simulated network and
// fires the burst.
func runRPCLoad(pt rpcLoadPoint, seed int64) (Result, error) {
	nw := netsim.NewNetwork(pt.prof)
	ln, err := nw.Listen("rpc-server")
	if err != nil {
		return Result{}, err
	}
	srv := adocrpc.NewServer(adocrpc.ServerConfig{MaxConcurrent: pt.concurrency})
	srv.Register("echo", func(_ context.Context, args [][]byte) ([][]byte, error) {
		return args, nil
	})
	go srv.Serve(ln)
	defer srv.Close()

	pool, err := adocrpc.NewPool(adocrpc.PoolConfig{
		Dial: func(context.Context) (net.Conn, error) { return nw.Dial("rpc-server") },
	})
	if err != nil {
		return Result{}, err
	}
	defer pool.Close()

	payload := datagen.ASCII(pt.payload, seed)
	var wg sync.WaitGroup
	errs := make(chan error, pt.concurrency)
	// Pre-filled and buffered: if every worker bails out on an error, the
	// run must still unwind and report it, not wedge feeding a queue
	// nobody drains.
	work := make(chan int, pt.calls)
	for i := 0; i < pt.calls; i++ {
		work <- i
	}
	close(work)
	start := time.Now()
	for w := 0; w < pt.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				res, err := pool.Call(context.Background(), "echo", [][]byte{payload})
				if err != nil {
					errs <- err
					return
				}
				if len(res) != 1 || len(res[0]) != len(payload) {
					errs <- fmt.Errorf("echo returned %d results", len(res))
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return Result{}, err
	}

	stats := pool.Stats()
	neg := ""
	if n, ok := pool.Negotiated(); ok {
		neg = n.String()
	}
	bytes := int64(pt.calls) * int64(pt.payload) * 2 // request + echoed response
	return Result{
		Scenario:       "rpcload/" + pt.prof.Name,
		Bytes:          bytes,
		ElapsedSeconds: elapsed.Seconds(),
		ThroughputBps:  float64(bytes) / elapsed.Seconds(),
		Negotiated:     neg,
		Calls:          pt.calls,
		Concurrency:    pt.concurrency,
		WireBytes:      stats.WireSent + stats.WireReceived,
	}, nil
}
