package bench

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"adoc/adocmux"
	"adoc/adocrpc"
	"adoc/internal/datagen"
	"adoc/internal/netsim"
)

// rpcLoadPoint is one row of the RPC load experiment: a burst of
// concurrent echo calls through an adocrpc pool over one simulated
// network.
type rpcLoadPoint struct {
	prof        netsim.Profile
	concurrency int
	calls       int  // total calls across all workers
	payload     int  // request payload bytes (response echoes it back)
	dict        bool // dictionary compression + response delta encoding
}

// rpcLoadPoints scales the workload to each network: enough traffic for
// the adaptive pipeline to engage, small enough that the WAN rows finish
// in seconds. maxPayload (from Config.MaxSize) caps the per-call
// payload for CI-speed runs. Each network runs twice — plain, then with
// the dictionary codec and response deltas — so the report carries the
// redundancy-exploiting stack's win over the same traffic.
func rpcLoadPoints(seed int64, maxPayload int64) []rpcLoadPoint {
	capped := func(n int) int {
		if maxPayload > 0 && int64(n) > maxPayload {
			return int(maxPayload)
		}
		return n
	}
	// Payloads are sized so concurrent calls coalesce into mux batches of
	// several 200 KB adaptation buffers — small bursty payloads never
	// give the per-message controller a queue to react to.
	// The WAN rows run 64 calls too: at concurrency 16, the first burst
	// necessarily ships plain (no delta base exists yet), and a 32-call
	// run would be half cold start — misrepresenting the steady state
	// both modes reach.
	return []rpcLoadPoint{
		{prof: netsim.Quiet(netsim.LAN100(seed)), concurrency: 16, calls: 64, payload: capped(256 << 10)},
		{prof: netsim.Quiet(netsim.Renater(seed)), concurrency: 16, calls: 64, payload: capped(128 << 10)},
		{prof: netsim.Quiet(netsim.LAN100(seed)), concurrency: 16, calls: 64, payload: capped(256 << 10), dict: true},
		{prof: netsim.Quiet(netsim.Renater(seed)), concurrency: 16, calls: 64, payload: capped(128 << 10), dict: true},
	}
}

// RPCLoad runs the adocrpc stack — client pool, mux sessions, server
// dispatch — under concurrent echo load over the paper's simulated
// LAN and WAN, reporting end-to-end request throughput, per-call p50
// latency, and the wire bytes the shared compression saved. It always
// runs live (the scenario IS the real engine; there is no model of it).
func RPCLoad(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "rpcload",
		Title: "Concurrent RPC load through adocrpc (pooled compressed sessions)",
		Columns: []string{"network", "mode", "calls", "conc", "payload", "elapsed(s)",
			"req/s", "payload MB/s", "p50(ms)", "wire/raw"},
	}
	for _, pt := range rpcLoadPoints(cfg.Seed, cfg.MaxSize) {
		res, err := runRPCLoad(pt, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("rpcload %s: %w", pt.prof.Name, err)
		}
		mode := "plain"
		if pt.dict {
			mode = "dict+delta"
		}
		t.AddRow(pt.prof.Name, mode,
			fmt.Sprintf("%d", pt.calls),
			fmt.Sprintf("%d", pt.concurrency),
			fmt.Sprintf("%d", pt.payload),
			fmt.Sprintf("%.3f", res.ElapsedSeconds),
			fmt.Sprintf("%.1f", float64(pt.calls)/res.ElapsedSeconds),
			fmt.Sprintf("%.2f", res.ThroughputBps/1e6),
			fmt.Sprintf("%.1f", res.P50CallSeconds*1e3),
			fmt.Sprintf("%.2f", float64(res.WireBytes)/float64(res.Bytes)),
		)
		t.AddResult(res)
	}
	t.AddNote("each call is one mux stream of a pooled session (max %d per target); all calls share the pool's adaptive controllers", adocrpc.DefaultMaxSessions)
	t.AddNote("wire/raw below 1.0 means the shared compression pipeline engaged on the aggregate RPC traffic")
	t.AddNote("dict+delta rows train dictionaries from recent payloads and ship repeated responses as deltas against the client's cache")
	return t, nil
}

// runRPCLoad stands the full stack up over one simulated network and
// fires the burst.
func runRPCLoad(pt rpcLoadPoint, seed int64) (Result, error) {
	nw := netsim.NewNetwork(pt.prof)
	ln, err := nw.Listen("rpc-server")
	if err != nil {
		return Result{}, err
	}
	var mux adocmux.Config
	if pt.dict {
		// A few megabytes between retrains: each announcement ships the
		// (up to 32 KiB) dictionary in-band, so retraining too eagerly on
		// this stationary workload would cost more wire than it saves.
		mux = adocmux.Config{EnableDict: true, DictRetrainBytes: 4 << 20}
	}
	srv := adocrpc.NewServer(adocrpc.ServerConfig{MaxConcurrent: pt.concurrency, Mux: mux})
	srv.Register("echo", func(_ context.Context, args [][]byte) ([][]byte, error) {
		return args, nil
	})
	go srv.Serve(ln)
	defer srv.Close()

	pool, err := adocrpc.NewPool(adocrpc.PoolConfig{
		Dial:        func(context.Context) (net.Conn, error) { return nw.Dial("rpc-server") },
		Mux:         mux,
		EnableDelta: pt.dict,
	})
	if err != nil {
		return Result{}, err
	}
	defer pool.Close()

	payload := datagen.ASCII(pt.payload, seed)
	var wg sync.WaitGroup
	errs := make(chan error, pt.concurrency)
	latencies := make(chan time.Duration, pt.calls)
	// Pre-filled and buffered: if every worker bails out on an error, the
	// run must still unwind and report it, not wedge feeding a queue
	// nobody drains.
	work := make(chan int, pt.calls)
	for i := 0; i < pt.calls; i++ {
		work <- i
	}
	close(work)
	start := time.Now()
	for w := 0; w < pt.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				res, err := pool.Call(context.Background(), "echo", [][]byte{payload})
				if err != nil {
					errs <- err
					return
				}
				latencies <- time.Since(t0)
				if len(res) != 1 || len(res[0]) != len(payload) {
					errs <- fmt.Errorf("echo returned %d results", len(res))
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return Result{}, err
	}
	close(latencies)
	var lats []time.Duration
	for d := range latencies {
		lats = append(lats, d)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var p50 float64
	if len(lats) > 0 {
		p50 = lats[len(lats)/2].Seconds()
	}

	stats := pool.Stats()
	neg := ""
	if n, ok := pool.Negotiated(); ok {
		neg = n.String()
	}
	scenario := "rpcload/" + pt.prof.Name
	if pt.dict {
		scenario += "+dictdelta"
	}
	bytes := int64(pt.calls) * int64(pt.payload) * 2 // request + echoed response
	return Result{
		Scenario:       scenario,
		Bytes:          bytes,
		ElapsedSeconds: elapsed.Seconds(),
		ThroughputBps:  float64(bytes) / elapsed.Seconds(),
		Negotiated:     neg,
		Calls:          pt.calls,
		Concurrency:    pt.concurrency,
		WireBytes:      stats.WireSent + stats.WireReceived,
		P50CallSeconds: p50,
	}, nil
}
