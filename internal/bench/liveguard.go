package bench

import (
	"io"
	"time"

	"adoc"
	"adoc/internal/netsim"
)

// liveGuardedSend pushes data one way through AdOC over a simulated link
// and reports elapsed seconds plus wire/raw. disabled=true emulates
// running without the incompressible guard by forcing compression at
// gzip 6 for every buffer.
func liveGuardedSend(prof netsim.Profile, data []byte, disabled bool) (sec float64, wireOverRaw float64, err error) {
	a, b := netsim.Pair(prof)
	defer a.Close()
	defer b.Close()

	recvDone := make(chan error, 1)
	go func() {
		conn, err := adoc.NewConn(b, adoc.DefaultOptions())
		if err != nil {
			recvDone <- err
			return
		}
		buf := make([]byte, 256*1024)
		var got int
		for got < len(data) {
			n, rerr := conn.Read(buf)
			got += n
			if rerr != nil {
				recvDone <- rerr
				return
			}
		}
		recvDone <- nil
	}()

	opts := adoc.DefaultOptions()
	min, max := adoc.MinLevel, adoc.MaxLevel
	if disabled {
		min, max = 7, 7 // forced gzip 6 on every buffer
	}
	conn, err := adoc.NewConn(a, opts)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	wire, err := conn.WriteMessageLevels(data, min, max)
	if err != nil {
		return 0, 0, err
	}
	if err := <-recvDone; err != nil && err != io.EOF {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	return elapsed.Seconds(), float64(wire) / float64(len(data)), nil
}
