package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"adoc/internal/netsim"
)

// quickCfg is a fast configuration for unit-testing the harness itself.
func quickCfg(mode Mode) Config {
	return Config{Mode: mode, Reps: 1, MaxSize: 1 << 20, Seed: 3}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 7)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "1", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSweepSizes(t *testing.T) {
	s := sweepSizes(1 << 20)
	if s[len(s)-1] != 1<<20 {
		t.Fatalf("last size %d", s[len(s)-1])
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("sizes not increasing")
		}
	}
}

func TestFigBandwidthModel(t *testing.T) {
	for _, fig := range []string{"fig3", "fig4", "fig5", "fig6", "fig7"} {
		tab, err := FigBandwidth(quickCfg(ModeModel), fig)
		if err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		if len(tab.Rows) == 0 || len(tab.Columns) != 5 {
			t.Fatalf("%s: empty table", fig)
		}
	}
}

func TestFigBandwidthUnknown(t *testing.T) {
	if _, err := FigBandwidth(quickCfg(ModeModel), "fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// parseLast returns the float in the given column of the last row.
func parseLast(t *testing.T, tab *Table, col int) float64 {
	t.Helper()
	row := tab.Rows[len(tab.Rows)-1]
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("cell %q: %v", row[col], err)
	}
	return v
}

func TestFig3ModelShape(t *testing.T) {
	cfg := quickCfg(ModeModel)
	cfg.MaxSize = 32 << 20
	tab, err := FigBandwidth(cfg, "fig3")
	if err != nil {
		t.Fatal(err)
	}
	posix := parseLast(t, tab, 1)
	ascii := parseLast(t, tab, 2)
	binary := parseLast(t, tab, 3)
	incompressible := parseLast(t, tab, 4)
	if !(ascii > binary && binary > posix*0.98) {
		t.Fatalf("ordering violated: posix=%v ascii=%v binary=%v", posix, ascii, binary)
	}
	if incompressible < posix*0.85 {
		t.Fatalf("incompressible %v far below posix %v", incompressible, posix)
	}
	// Paper: AdOC 1.85-2.36x on ASCII at 32 MB.
	if ascii/posix < 1.3 || ascii/posix > 4 {
		t.Fatalf("ascii speedup %.2f outside band", ascii/posix)
	}
}

func TestFig7ModelBypass(t *testing.T) {
	cfg := quickCfg(ModeModel)
	cfg.MaxSize = 8 << 20
	tab, err := FigBandwidth(cfg, "fig7")
	if err != nil {
		t.Fatal(err)
	}
	posix := parseLast(t, tab, 1)
	ascii := parseLast(t, tab, 2)
	diff := ascii/posix - 1
	if diff > 0.05 || diff < -0.15 {
		t.Fatalf("Gbit AdOC deviates from POSIX: %v vs %v", ascii, posix)
	}
}

func TestMeasureEchoLiveSmall(t *testing.T) {
	cfg := quickCfg(ModeLive)
	prof := netsim.Profile{Name: "t", BandwidthBps: 1e9, Latency: 10 * time.Microsecond, MTU: 8192}
	for _, m := range Methods() {
		durs, err := measureEcho(cfg, prof, m, 64*1024)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(durs) != cfg.Reps || durs[0] <= 0 {
			t.Fatalf("%s: durations %v", m, durs)
		}
	}
}

func TestCollapse(t *testing.T) {
	durs := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	if got := collapse(durs, AggBest); got != 1 {
		t.Fatalf("best = %v", got)
	}
	if got := collapse(durs, AggAvg); got != 2 {
		t.Fatalf("avg = %v", got)
	}
}

func TestTable1(t *testing.T) {
	cfg := quickCfg(ModeLive)
	tab, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("Table 1 has %d rows, want 10 (lzf + gzip 1-9)", len(tab.Rows))
	}
	// Ratio column on the HB file must be monotone-ish increasing with
	// level and saturate (Table 1 shape).
	first, err := strconv.ParseFloat(tab.Rows[1][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	last, err := strconv.ParseFloat(tab.Rows[9][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if last < first {
		t.Fatalf("gzip9 ratio %v below gzip1 ratio %v", last, first)
	}
}

func TestAblateBufferSize(t *testing.T) {
	tab, err := AblateBufferSize(quickCfg(ModeLive))
	if err != nil {
		t.Fatal(err)
	}
	// Find the 200 KB row and check the paper's <6% claim.
	var found bool
	for _, row := range tab.Rows {
		if row[0] == "200 KB" {
			found = true
			deg, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
			if err != nil {
				t.Fatal(err)
			}
			if deg > 6 {
				t.Fatalf("200 KB degradation %.2f%% exceeds the paper's 6%%", deg)
			}
		}
	}
	if !found {
		t.Fatal("no 200 KB row")
	}
}

func TestAblateDivergence(t *testing.T) {
	tab, err := AblateDivergence(quickCfg(ModeModel))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		on, _ := strconv.ParseFloat(row[1], 64)
		off, _ := strconv.ParseFloat(row[2], 64)
		if on > off*1.01 {
			t.Fatalf("%s: guard on (%v) slower than off (%v)", row[0], on, off)
		}
	}
}

func TestAblateProbe(t *testing.T) {
	tab, err := AblateProbe(quickCfg(ModeModel))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		on, _ := strconv.ParseFloat(row[1], 64)
		off, _ := strconv.ParseFloat(row[2], 64)
		if on > off*1.05 {
			t.Fatalf("probe on (%v) slower than off (%v) on Gbit", on, off)
		}
	}
}

func TestAblateAdaptivity(t *testing.T) {
	tab, err := AblateAdaptivity(quickCfg(ModeModel))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// The adaptive column must be within 25% of the best fixed choice on
	// every network (it cannot beat an oracle, but must track it).
	for _, row := range tab.Rows {
		adaptive, _ := strconv.ParseFloat(row[2], 64)
		best := adaptive
		for _, c := range []int{3, 4, 5} {
			v, _ := strconv.ParseFloat(row[c], 64)
			if v < best {
				best = v
			}
		}
		if adaptive > best*1.35 {
			t.Fatalf("%s: adaptive %.3f trails best fixed %.3f by too much", row[0], adaptive, best)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Mode != ModeModel || c.Reps != 1 || c.MaxSize != 32<<20 {
		t.Fatalf("defaults: %+v", c)
	}
	l := Config{Mode: ModeLive}.withDefaults()
	if l.Reps != 3 || l.MaxSize != 4<<20 {
		t.Fatalf("live defaults: %+v", l)
	}
}

func TestAblatePacketSize(t *testing.T) {
	tab, err := AblatePacketSize(quickCfg(ModeModel))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestAblateQueueCapacity(t *testing.T) {
	tab, err := AblateQueueCapacity(quickCfg(ModeModel))
	if err != nil {
		t.Fatal(err)
	}
	// Beyond the control bands, capacity must not change the outcome
	// much (it only bounds memory).
	big, _ := strconv.ParseFloat(tab.Rows[4][1], 64)
	mid, _ := strconv.ParseFloat(tab.Rows[2][1], 64)
	if big > mid*1.2 || mid > big*1.2 {
		t.Fatalf("capacity unexpectedly dominant: 256 -> %v, 4096 -> %v", mid, big)
	}
}
