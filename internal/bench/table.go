// Package bench is the evaluation harness: it regenerates every table and
// figure of the paper (Table 1, Table 2, Figures 3-9) plus the ablations
// DESIGN.md calls out, in two modes — live (real engine over the network
// simulator, wall-clock time) and model (virtual-time pipeline model,
// milliseconds per sweep).
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Results are the machine-readable companions of the rows, for
	// experiments that produce them (adocbench -json serializes these
	// into BENCH_adocbench.json so the perf trajectory is trackable
	// across commits).
	Results []Result
}

// Result is one machine-readable measurement of an experiment.
type Result struct {
	// Scenario names the measurement (experiment id + point).
	Scenario string `json:"scenario"`
	// Bytes is the application payload moved.
	Bytes int64 `json:"bytes"`
	// ElapsedSeconds is the wall (or virtual) time the scenario took.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ThroughputBps is Bytes/ElapsedSeconds.
	ThroughputBps float64 `json:"throughput_bps"`
	// Negotiated is the handshake-agreed transport configuration, when
	// the scenario ran over a negotiated connection.
	Negotiated string `json:"negotiated,omitempty"`
	// Calls and Concurrency describe RPC-load scenarios.
	Calls       int `json:"calls,omitempty"`
	Concurrency int `json:"concurrency,omitempty"`
	// P50CallSeconds is the median per-call round-trip latency of
	// RPC-load scenarios.
	P50CallSeconds float64 `json:"p50_call_seconds,omitempty"`
	// WireBytes is what actually crossed the link (compressed + framing),
	// when the scenario can observe it.
	WireBytes int64 `json:"wire_bytes,omitempty"`
	// Conns is the concurrent connection count of scaling scenarios.
	Conns int `json:"conns,omitempty"`
	// GoroutinesPerConnIdle and GoroutinesPerConnActive are the
	// steady-state goroutine costs of one connection (beyond the
	// process baseline) while parked between messages and while stalled
	// mid-message with the full pipeline stood up.
	GoroutinesPerConnIdle   float64 `json:"goroutines_per_conn_idle,omitempty"`
	GoroutinesPerConnActive float64 `json:"goroutines_per_conn_active,omitempty"`
	// AllocsPerOp is the whole-process heap allocations per message
	// exchange (send + receive) once the buffer pools are warm.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddResult attaches one machine-readable measurement.
func (t *Table) AddResult(r Result) { t.Results = append(t.Results, r) }

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Columns)
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
