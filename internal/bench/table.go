// Package bench is the evaluation harness: it regenerates every table and
// figure of the paper (Table 1, Table 2, Figures 3-9) plus the ablations
// DESIGN.md calls out, in two modes — live (real engine over the network
// simulator, wall-clock time) and model (virtual-time pipeline model,
// milliseconds per sweep).
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Columns)
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
