package lossy

import (
	"math"
	"math/rand"
	"testing"
)

// gradient builds a smooth test image (the friendly case).
func gradient(w, h int) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, byte((x+y)*255/(w+h)))
		}
	}
	return im
}

// noisy builds a hostile random image.
func noisy(w, h int, seed int64) *Image {
	im := NewImage(w, h)
	rand.New(rand.NewSource(seed)).Read(im.Pix)
	return im
}

// photoLike mixes smooth regions with edges and texture.
func photoLike(w, h int, seed int64) *Image {
	im := gradient(w, h)
	rng := rand.New(rand.NewSource(seed))
	// Rectangles of differing brightness (edges).
	for i := 0; i < 12; i++ {
		x0, y0 := rng.Intn(w), rng.Intn(h)
		x1, y1 := min(w, x0+rng.Intn(w/3)+1), min(h, y0+rng.Intn(h/3)+1)
		v := byte(rng.Intn(256))
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				im.Set(x, y, v)
			}
		}
	}
	// Mild texture.
	for i := range im.Pix {
		im.Pix[i] = byte(int(im.Pix[i]) + rng.Intn(7) - 3)
	}
	return im
}

func TestLosslessRoundtripExact(t *testing.T) {
	for _, im := range []*Image{gradient(100, 80), noisy(64, 64, 1), photoLike(120, 90, 2)} {
		data, err := Encode(im, Lossless)
		if err != nil {
			t.Fatal(err)
		}
		got, q, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if q != Lossless {
			t.Fatalf("quality = %d", q)
		}
		if got.W != im.W || got.H != im.H {
			t.Fatalf("size %dx%d", got.W, got.H)
		}
		for i := range im.Pix {
			if got.Pix[i] != im.Pix[i] {
				t.Fatalf("lossless roundtrip altered pixel %d", i)
			}
		}
	}
}

func TestQualityLadderSizeAndPSNR(t *testing.T) {
	im := photoLike(256, 192, 3)
	type point struct {
		q    Quality
		size int
		psnr float64
	}
	var pts []point
	for _, q := range []Quality{Q5, Q4, Q3, Q2, Q1} {
		data, err := Encode(im, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		p, err := PSNR(im, got)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{q, len(data), p})
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].size >= pts[i-1].size {
			t.Errorf("size not decreasing: %v=%d then %v=%d",
				pts[i-1].q, pts[i-1].size, pts[i].q, pts[i].size)
		}
		if pts[i].psnr >= pts[i-1].psnr {
			t.Errorf("psnr not decreasing: %v=%.1f then %v=%.1f",
				pts[i-1].q, pts[i-1].psnr, pts[i].q, pts[i].psnr)
		}
	}
	if pts[0].psnr < 30 {
		t.Errorf("Q5 PSNR %.1f dB too low", pts[0].psnr)
	}
	if pts[len(pts)-1].psnr < 10 {
		t.Errorf("Q1 PSNR %.1f dB implausibly low", pts[len(pts)-1].psnr)
	}
	raw := im.W * im.H
	if pts[len(pts)-1].size > raw/20 {
		t.Errorf("Q1 thumbnail %d bytes for %d raw: not small enough", pts[len(pts)-1].size, raw)
	}
}

func TestGradientCompressesExtremely(t *testing.T) {
	im := gradient(512, 512)
	data, err := Encode(im, Q5)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > len(im.Pix)/20 {
		t.Fatalf("smooth gradient compressed to %d bytes of %d", len(data), len(im.Pix))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, err := Decode(make([]byte, 30)); err == nil {
		t.Fatal("bad magic accepted")
	}
	good, _ := Encode(gradient(10, 10), Q5)
	// Corrupt the deflate payload.
	bad := append([]byte(nil), good...)
	for i := 19; i < len(bad); i++ {
		bad[i] ^= 0xAA
	}
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("corrupt payload accepted")
	}
	// Truncate.
	if _, _, err := Decode(good[:len(good)/2]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Implausible header dims.
	hdr := append([]byte(nil), good...)
	hdr[3], hdr[4], hdr[5], hdr[6] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := Decode(hdr); err == nil {
		t.Fatal("oversized dims accepted")
	}
}

func TestEncodeBadQuality(t *testing.T) {
	if _, err := Encode(gradient(4, 4), Quality(42)); err == nil {
		t.Fatal("bad quality accepted")
	}
}

func TestDownsampleUpsampleDims(t *testing.T) {
	im := gradient(101, 67) // deliberately not divisible
	d := Downsample(im, 4)
	if d.W != 26 || d.H != 17 {
		t.Fatalf("downsampled to %dx%d", d.W, d.H)
	}
	u := Upsample(d, 101, 67)
	if u.W != 101 || u.H != 67 {
		t.Fatalf("upsampled to %dx%d", u.W, u.H)
	}
}

func TestThumbnail(t *testing.T) {
	im := gradient(1000, 400)
	th := Thumbnail(im, 128)
	if th.W > 128 || th.H > 128 {
		t.Fatalf("thumbnail %dx%d exceeds 128", th.W, th.H)
	}
	small := gradient(50, 40)
	if th2 := Thumbnail(small, 128); th2.W != 50 || th2.H != 40 {
		t.Fatal("small image was resized")
	}
}

func TestPSNR(t *testing.T) {
	a := gradient(32, 32)
	b := gradient(32, 32)
	p, err := PSNR(a, b)
	if err != nil || !math.IsInf(p, 1) {
		t.Fatalf("identical images: %v, %v", p, err)
	}
	b.Pix[0] ^= 0xFF
	p, err = PSNR(a, b)
	if err != nil || math.IsInf(p, 1) || p < 0 {
		t.Fatalf("perturbed: %v, %v", p, err)
	}
	if _, err := PSNR(a, gradient(16, 16)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestNewImagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero dims")
		}
	}()
	NewImage(0, 10)
}
