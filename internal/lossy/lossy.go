// Package lossy implements the paper's stated future work (§8): "lossy
// compression for image transfer with various resolution. This is useful
// when a user has to choose one image among a set of images (thumbnails):
// the resolution and accuracy of the thumbnails is not necessary required
// to be very high."
//
// The codec combines three orthogonal loss dials — spatial downsampling
// (resolution), uniform quantization (accuracy) and left-neighbor delta
// prediction followed by DEFLATE (entropy) — into five preset qualities
// plus a lossless mode. Encoded images are ordinary byte slices, so they
// travel through AdOC connections like any other payload and thumbnails
// of large images fit comfortably under the 512 KB small-message
// threshold.
package lossy

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Image is a simple 8-bit grayscale raster (row-major).
type Image struct {
	W, H int
	Pix  []byte
}

// NewImage allocates a w×h image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("lossy: image dimensions must be positive")
	}
	return &Image{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) byte { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, v byte) { im.Pix[y*im.W+x] = v }

// Quality selects a loss preset.
type Quality int

// Presets: higher quality keeps more resolution and more bits.
const (
	// Lossless keeps every pixel exactly (delta + DEFLATE only).
	Lossless Quality = 0
	// Q5..Q1 trade accuracy for size; Q1 is a coarse thumbnail.
	Q5 Quality = 5 // full resolution, 7-bit
	Q4 Quality = 4 // full resolution, 6-bit
	Q3 Quality = 3 // 1/2 resolution, 6-bit
	Q2 Quality = 2 // 1/4 resolution, 5-bit
	Q1 Quality = 1 // 1/8 resolution, 4-bit
)

// params maps a quality to (downsample factor, kept bits).
func (q Quality) params() (factor, bits int, err error) {
	switch q {
	case Lossless:
		return 1, 8, nil
	case Q5:
		return 1, 7, nil
	case Q4:
		return 1, 6, nil
	case Q3:
		return 2, 6, nil
	case Q2:
		return 4, 5, nil
	case Q1:
		return 8, 4, nil
	default:
		return 0, 0, fmt.Errorf("lossy: unknown quality %d", int(q))
	}
}

// Valid reports whether q is a defined preset.
func (q Quality) Valid() bool { _, _, err := q.params(); return err == nil }

// Downsample reduces resolution by an integer factor with a box filter.
func Downsample(im *Image, factor int) *Image {
	if factor <= 1 {
		cp := NewImage(im.W, im.H)
		copy(cp.Pix, im.Pix)
		return cp
	}
	w := (im.W + factor - 1) / factor
	h := (im.H + factor - 1) / factor
	out := NewImage(w, h)
	for oy := 0; oy < h; oy++ {
		for ox := 0; ox < w; ox++ {
			var sum, n int
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					x, y := ox*factor+dx, oy*factor+dy
					if x < im.W && y < im.H {
						sum += int(im.At(x, y))
						n++
					}
				}
			}
			out.Set(ox, oy, byte(sum/n))
		}
	}
	return out
}

// Upsample scales an image to w×h with bilinear interpolation.
func Upsample(im *Image, w, h int) *Image {
	out := NewImage(w, h)
	if im.W == w && im.H == h {
		copy(out.Pix, im.Pix)
		return out
	}
	for y := 0; y < h; y++ {
		fy := float64(y) * float64(im.H-1) / float64(max(h-1, 1))
		y0 := int(fy)
		y1 := min(y0+1, im.H-1)
		wy := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := float64(x) * float64(im.W-1) / float64(max(w-1, 1))
			x0 := int(fx)
			x1 := min(x0+1, im.W-1)
			wx := fx - float64(x0)
			v := (1-wy)*((1-wx)*float64(im.At(x0, y0))+wx*float64(im.At(x1, y0))) +
				wy*((1-wx)*float64(im.At(x0, y1))+wx*float64(im.At(x1, y1)))
			out.Set(x, y, byte(v+0.5))
		}
	}
	return out
}

// quantize drops low bits, keeping the representative at the bucket
// midpoint to halve the expected error.
func quantize(pix []byte, bits int) {
	if bits >= 8 {
		return
	}
	shift := uint(8 - bits)
	half := byte(1<<shift) / 2
	for i, v := range pix {
		q := v >> shift << shift
		if int(q)+int(half) <= 255 {
			q += half
		}
		pix[i] = q
	}
}

// Encoded format:
//
//	magic(2)=0x1055 quality(1) origW(4) origH(4) codedW(4) codedH(4)
//	deflate( delta-coded pixels )
const magic = 0x1055

// ErrCorrupt reports an undecodable image payload.
var ErrCorrupt = errors.New("lossy: corrupt image data")

// Encode compresses im at the given quality.
func Encode(im *Image, q Quality) ([]byte, error) {
	factor, bits, err := q.params()
	if err != nil {
		return nil, err
	}
	coded := Downsample(im, factor)
	quantize(coded.Pix, bits)

	// Left-neighbor delta prediction turns smooth gradients into runs of
	// near-zero bytes that DEFLATE devours.
	delta := make([]byte, len(coded.Pix))
	for y := 0; y < coded.H; y++ {
		prev := byte(0)
		row := coded.Pix[y*coded.W : (y+1)*coded.W]
		for x, v := range row {
			delta[y*coded.W+x] = v - prev
			prev = v
		}
	}

	var buf bytes.Buffer
	hdr := make([]byte, 0, 19)
	hdr = binary.BigEndian.AppendUint16(hdr, magic)
	hdr = append(hdr, byte(q))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(im.W))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(im.H))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(coded.W))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(coded.H))
	buf.Write(hdr)
	fw, err := flate.NewWriter(&buf, 6)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(delta); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reconstructs an image at its original dimensions (upsampling if
// the quality preset reduced resolution).
func Decode(data []byte) (*Image, Quality, error) {
	if len(data) < 19 {
		return nil, 0, ErrCorrupt
	}
	if binary.BigEndian.Uint16(data) != magic {
		return nil, 0, ErrCorrupt
	}
	q := Quality(data[2])
	if !q.Valid() {
		return nil, 0, fmt.Errorf("%w: quality %d", ErrCorrupt, data[2])
	}
	origW := int(binary.BigEndian.Uint32(data[3:]))
	origH := int(binary.BigEndian.Uint32(data[7:]))
	codedW := int(binary.BigEndian.Uint32(data[11:]))
	codedH := int(binary.BigEndian.Uint32(data[15:]))
	const maxDim = 1 << 16
	if origW <= 0 || origH <= 0 || codedW <= 0 || codedH <= 0 ||
		origW > maxDim || origH > maxDim || codedW > origW || codedH > origH {
		return nil, 0, ErrCorrupt
	}
	fr := flate.NewReader(bytes.NewReader(data[19:]))
	delta := make([]byte, codedW*codedH)
	if _, err := io.ReadFull(fr, delta); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	coded := &Image{W: codedW, H: codedH, Pix: delta}
	for y := 0; y < codedH; y++ {
		prev := byte(0)
		row := coded.Pix[y*codedW : (y+1)*codedW]
		for x := range row {
			row[x] += prev
			prev = row[x]
		}
	}
	return Upsample(coded, origW, origH), q, nil
}

// PSNR returns the peak signal-to-noise ratio between two equally sized
// images in dB (+Inf for identical images).
func PSNR(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("lossy: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var se float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		se += d * d
	}
	if se == 0 {
		return math.Inf(1), nil
	}
	mse := se / float64(len(a.Pix))
	return 10 * math.Log10(255*255/mse), nil
}

// Thumbnail returns the image downsampled so its longest side is at most
// maxDim.
func Thumbnail(im *Image, maxDim int) *Image {
	if maxDim <= 0 {
		maxDim = 128
	}
	longest := max(im.W, im.H)
	if longest <= maxDim {
		return Downsample(im, 1)
	}
	factor := (longest + maxDim - 1) / maxDim
	return Downsample(im, factor)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
