package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockMonotonicNow(t *testing.T) {
	var c Real
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatal("time went backwards")
	}
}

func TestRealClockSleep(t *testing.T) {
	var c Real
	start := time.Now()
	c.Sleep(10 * time.Millisecond)
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("Sleep returned early")
	}
}

func TestRealClockAfter(t *testing.T) {
	var c Real
	select {
	case <-c.After(5 * time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("After never fired")
	}
}

func TestManualNowAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now = %v", m.Now())
	}
	m.Advance(3 * time.Second)
	if got := m.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Now after Advance = %v", got)
	}
}

func TestManualSleepWakesOnAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		m.Sleep(5 * time.Second)
		close(done)
	}()
	// Wait until the sleeper registers.
	for m.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	m.Advance(2 * time.Second)
	select {
	case <-done:
		t.Fatal("Sleep woke before its deadline")
	case <-time.After(20 * time.Millisecond):
	}
	m.Advance(3 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep never woke")
	}
}

func TestManualSleepZeroReturnsImmediately(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		m.Sleep(0)
		m.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("zero Sleep blocked")
	}
}

func TestManualAfterImmediate(t *testing.T) {
	m := NewManual(time.Unix(50, 0))
	select {
	case ts := <-m.After(0):
		if !ts.Equal(time.Unix(50, 0)) {
			t.Fatalf("After(0) delivered %v", ts)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestManualMultipleWaiters(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 1; i <= 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Sleep(time.Duration(i) * time.Second)
		}(i)
	}
	for m.PendingWaiters() != 5 {
		time.Sleep(time.Millisecond)
	}
	m.Advance(10 * time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("waiters not all released")
	}
}

func TestManualSetForwards(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	m.Set(time.Unix(100, 0))
	if !m.Now().Equal(time.Unix(100, 0)) {
		t.Fatalf("Now = %v", m.Now())
	}
}

func TestManualSetBackwardsPanics(t *testing.T) {
	m := NewManual(time.Unix(100, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	m.Set(time.Unix(50, 0))
}

func TestSystemClockIsReal(t *testing.T) {
	if _, ok := System.(Real); !ok {
		t.Fatalf("System clock is %T", System)
	}
}
