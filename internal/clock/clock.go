// Package clock abstracts time so that the adaptive controller, the network
// simulator and the discrete-event model can run against either the real
// wall clock or a manually advanced clock in tests.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time and the ability to sleep. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time of this clock.
	Now() time.Time
	// Sleep blocks the caller for at least d on this clock's timeline.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed on this clock's timeline.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

// Now implements Clock using time.Now.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock using time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock using time.After.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// System is a shared, allocation-free real clock.
var System Clock = Real{}

// waiter is a sleeper registered with a Manual clock.
type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// Manual is a deterministic clock advanced explicitly by tests or by the
// discrete-event simulator. Sleepers block until Advance moves the clock
// past their deadline.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

// NewManual returns a Manual clock starting at the given time.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now returns the manual clock's current time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep blocks until the clock has been advanced by at least d.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After returns a channel that fires when the clock passes now+d.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &waiter{deadline: m.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- m.now
		return w.ch
	}
	m.waiters = append(m.waiters, w)
	return w.ch
}

// Advance moves the clock forward by d, waking any sleeper whose deadline
// has been reached.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	var remaining []*waiter
	var fired []*waiter
	for _, w := range m.waiters {
		if !w.deadline.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}

// Set jumps the clock to t (t must not be before the current time) and
// wakes sleepers as Advance does.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	if t.Before(m.now) {
		m.mu.Unlock()
		panic("clock: Manual.Set moving backwards")
	}
	d := t.Sub(m.now)
	m.mu.Unlock()
	m.Advance(d)
}

// PendingWaiters reports how many sleepers are currently blocked; useful in
// tests for synchronizing with goroutines that use the clock.
func (m *Manual) PendingWaiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}
