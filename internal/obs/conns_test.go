package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestConnTableRegisterListUnregister(t *testing.T) {
	table := NewRegistry().Conns()
	h1 := table.Register("engine", nil)
	h2 := table.Register("adocnet", nil)
	if h1.ID() == 0 || h2.ID() == 0 || h1.ID() == h2.ID() {
		t.Fatalf("bad IDs: %d, %d", h1.ID(), h2.ID())
	}
	if table.Len() != 2 {
		t.Fatalf("Len = %d, want 2", table.Len())
	}

	list := table.List()
	if len(list) != 2 || list[0].ID != h1.ID() || list[1].ID != h2.ID() {
		t.Fatalf("List not ordered by ID: %+v", list)
	}
	if list[0].Kind != "engine" || list[1].Kind != "adocnet" {
		t.Fatalf("kinds: %q, %q", list[0].Kind, list[1].Kind)
	}

	st, ok := table.Get(h2.ID())
	if !ok || st.Kind != "adocnet" {
		t.Fatalf("Get(%d): ok=%v kind=%q", h2.ID(), ok, st.Kind)
	}
	if _, ok := table.Get(999); ok {
		t.Fatal("Get of unknown ID succeeded")
	}

	h1.Unregister()
	h1.Unregister() // idempotent
	if table.Len() != 1 {
		t.Fatalf("Len after unregister = %d, want 1", table.Len())
	}
	if _, ok := table.Get(h1.ID()); ok {
		t.Fatal("unregistered connection still visible")
	}
}

func TestConnHandleEnrichment(t *testing.T) {
	table := NewRegistry().Conns()
	h := table.Register("engine", func(st *ConnState) {
		st.RawBytesSent = 1000
		st.WireBytesSent = 250
		st.CompressionRatio = 4
		st.Level = 3
		st.LastTransition = &ConnTransition{From: 1, To: 3, Cause: "queue-rise"}
	})
	h.SetKind("gateway-ingress")
	h.SetAddrs("127.0.0.1:1111", "127.0.0.1:2222")
	h.SetConfig(ConnConfig{
		Version: 2, PacketSize: 8192, BufferSize: 200_000,
		LevelBounds: [2]int{1, 10}, Codecs: "raw|lzf|deflate", Mux: true, Trace: true,
	})
	streams := 0
	h.SetStreams(func() int { return streams })
	streams = 7

	st, ok := table.Get(h.ID())
	if !ok {
		t.Fatal("Get failed")
	}
	if st.Kind != "gateway-ingress" {
		t.Errorf("Kind = %q (outer layer should win)", st.Kind)
	}
	if st.LocalAddr != "127.0.0.1:1111" || st.PeerAddr != "127.0.0.1:2222" {
		t.Errorf("addrs: %q -> %q", st.LocalAddr, st.PeerAddr)
	}
	if st.Config.LevelBounds != [2]int{1, 10} || !st.Config.Mux || st.Config.Version != 2 {
		t.Errorf("config: %+v", st.Config)
	}
	if st.Streams != 7 {
		t.Errorf("Streams = %d (callback should be read live)", st.Streams)
	}
	if st.RawBytesSent != 1000 || st.Level != 3 {
		t.Errorf("fill fields missing: %+v", st)
	}
	if st.LastTransition == nil || st.LastTransition.Cause != "queue-rise" {
		t.Errorf("LastTransition: %+v", st.LastTransition)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("UptimeSeconds = %v", st.UptimeSeconds)
	}
	if st.OpenedAt.IsZero() || st.OpenedAt.After(time.Now()) {
		t.Errorf("OpenedAt = %v", st.OpenedAt)
	}
}

func TestConnHandleNilSafe(t *testing.T) {
	var table *ConnTable
	h := table.Register("x", nil)
	if h != nil {
		t.Fatal("nil table should hand out nil handles")
	}
	// All no-ops, no panics.
	h.SetKind("k")
	h.SetAddrs("a", "b")
	h.SetConfig(ConnConfig{})
	h.SetStreams(func() int { return 1 })
	h.Unregister()
	if h.ID() != 0 {
		t.Fatal("nil handle ID")
	}
	if table.Len() != 0 || table.List() != nil {
		t.Fatal("nil table should be empty")
	}
	if _, ok := table.Get(1); ok {
		t.Fatal("nil table Get")
	}
}

func TestConnStateJSONShape(t *testing.T) {
	table := NewRegistry().Conns()
	h := table.Register("adocnet", nil)
	h.SetConfig(ConnConfig{LevelBounds: [2]int{1, 10}})
	st, _ := table.Get(h.ID())
	out, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	// The negotiated bounds render as the documented two-element array —
	// CI's jq assertion depends on this exact shape.
	if !strings.Contains(string(out), `"level_bounds":[1,10]`) {
		t.Fatalf("JSON missing level_bounds array: %s", out)
	}
	for _, key := range []string{`"id"`, `"kind"`, `"config"`, `"uptime_seconds"`, `"streams"`} {
		if !strings.Contains(string(out), key) {
			t.Errorf("JSON missing %s: %s", key, out)
		}
	}
}
