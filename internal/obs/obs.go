// Package obs is the unified observability layer: typed atomic metrics
// (counters, gauges, histograms) registered in a Registry that renders
// the Prometheus text exposition format.
//
// The design goal is that instrumentation costs nothing on the per-buffer
// hot path. Every metric is one or two atomic adds — no maps, no locks,
// no allocations. The trick is parent-chaining: a Registry owns one root
// metric per family (the process- or stack-wide total), and each
// per-connection owner (an engine, a mux session, an RPC pool) holds a
// Child of that root. Incrementing the child bumps the child and the root
// with two uncontended-in-practice atomic adds, so
//
//   - the owner's Stats() view reads its own child values (per-connection
//     counters, exactly as before the refactor), and
//   - the registry renders process totals without walking owners, and
//     retired owners' contributions persist with no fold-on-close
//     bookkeeping.
//
// Registries bind per stack the way core.Options.SharedPool binds worker
// pools: Options.Metrics names a registry, nil means the process-wide
// Default(). Instantaneous values that cannot be summed across owners
// (the adapt controller's current level, per-level bandwidth EWMAs) are
// published as GaugeFuncs by the long-lived owner that holds them — the
// gateway registers its tunnel's snapshot, not every connection its own.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

// Counter is a monotonically increasing atomic counter. A Counter
// obtained from a Registry is the family root; Child() derives a
// per-owner counter whose increments also bump the root. The zero value
// (or NewCounter) is a detached counter bound to no registry.
type Counter struct {
	v      atomic.Int64
	parent *Counter
}

// NewCounter returns a detached counter (no registry, no parent) — for
// owners constructed without a metrics binding.
func NewCounter() *Counter { return &Counter{} }

// Child returns a new counter whose Add/Inc also increment c (and c's
// own parents, transitively).
func (c *Counter) Child() *Counter { return &Counter{parent: c} }

// Add increments the counter (and its parent chain) by n.
func (c *Counter) Add(n int64) {
	for x := c; x != nil; x = x.parent {
		x.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. Children created with Child
// propagate Add/Inc/Dec to the family root, so the root reads as the sum
// across owners (live ones only — owners decrement what they added when
// they go away). Set writes the local value only and is for root or
// detached gauges.
type Gauge struct {
	v      atomic.Int64
	parent *Gauge
}

// NewGauge returns a detached gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Child returns a gauge whose Add/Inc/Dec also apply to g.
func (g *Gauge) Child() *Gauge { return &Gauge{parent: g} }

// Add moves the gauge (and its parent chain) by n.
func (g *Gauge) Add(n int64) {
	for x := g; x != nil; x = x.parent {
		x.v.Add(n)
	}
}

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Set stores v locally, without touching the parent chain.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets are histogram bounds suited to RPC latencies, in
// seconds, from half a millisecond to ten seconds.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket atomic histogram. Observations are
// lock-free: one atomic add on the bucket, one on the count, and a CAS
// loop on the sum. Like Counter, a registry Histogram is the family root
// and Child() derives per-owner instances feeding it.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; the +Inf bucket is implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
	parent  *Histogram
}

// NewHistogram returns a detached histogram over the given upper bounds
// (nil selects DefLatencyBuckets). Bounds are sorted and deduplicated.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	n := 0
	for i, b := range bs {
		if i == 0 || b != bs[n-1] {
			bs[n] = b
			n++
		}
	}
	bs = bs[:n]
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Child returns a histogram with the same bounds whose observations also
// feed h.
func (h *Histogram) Child() *Histogram {
	c := NewHistogram(h.bounds)
	c.parent = h
	return c
}

// Observe records v in h and its parent chain.
func (h *Histogram) Observe(v float64) {
	for x := h; x != nil; x = x.parent {
		x.observe(v)
	}
}

func (h *Histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}
