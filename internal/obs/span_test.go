package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"adoc/internal/clock"
)

func newTestTracer(every, capacity int) (*FlowTracer, *clock.Manual, *Registry) {
	clk := clock.NewManual(time.Unix(1000, 0))
	reg := NewRegistry()
	return NewFlowTracer(FlowTracerConfig{
		Capacity:    capacity,
		SampleEvery: every,
		Metrics:     reg,
		Clock:       clk,
	}), clk, reg
}

// TestFlowTracerNilSafe: every method must no-op on a nil tracer — hot
// paths thread a possibly-nil *FlowTracer without guards.
func TestFlowTracerNilSafe(t *testing.T) {
	var tr *FlowTracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr.SampleEvery() != 0 {
		t.Error("nil tracer reports a cadence")
	}
	if !tr.Now().IsZero() {
		t.Error("nil tracer has a clock")
	}
	if tc := tr.SampleNext(); tc.Sampled || tc.ID != 0 {
		t.Errorf("nil tracer sampled: %+v", tc)
	}
	tr.Record(TraceContext{ID: 1, Sampled: true}, 1, StageWire, time.Now(), time.Millisecond, 10, 0)
	if tr.Spans(0, 0) != nil {
		t.Error("nil tracer retained spans")
	}
	if tr.Total() != 0 {
		t.Error("nil tracer counted spans")
	}
}

// TestFlowTracerDisabled: SampleEvery <= 0 builds a tracer that never
// samples, so instrumented paths stay quiet.
func TestFlowTracerDisabled(t *testing.T) {
	tr, _, _ := newTestTracer(0, 8)
	if tr.Enabled() {
		t.Fatal("SampleEvery 0 tracer reports enabled")
	}
	for i := 0; i < 10; i++ {
		if tc := tr.SampleNext(); tc.Sampled {
			t.Fatal("disabled tracer sampled a batch")
		}
	}
	if tr.Total() != 0 {
		t.Errorf("disabled tracer recorded %d spans", tr.Total())
	}
}

// TestSampleCadence: the first batch ever offered is sampled (so short
// deterministic tests trace without warm-up), then exactly 1 in N.
func TestSampleCadence(t *testing.T) {
	const every = 4
	tr, _, _ := newTestTracer(every, 8)
	if tr.SampleEvery() != every {
		t.Fatalf("SampleEvery() = %d, want %d", tr.SampleEvery(), every)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 3*every; i++ {
		tc := tr.SampleNext()
		if want := i%every == 0; tc.Sampled != want {
			t.Fatalf("batch %d sampled = %v, want %v", i, tc.Sampled, want)
		}
		if tc.Sampled {
			if tc.ID == 0 {
				t.Fatalf("batch %d sampled with zero trace ID", i)
			}
			if seen[tc.ID] {
				t.Fatalf("trace ID %#x issued twice", tc.ID)
			}
			seen[tc.ID] = true
		} else if tc.ID != 0 {
			t.Fatalf("unsampled batch %d carries trace ID %#x", i, tc.ID)
		}
	}
}

// TestRecordFiltersAndHistograms: spans land in the ring, filter by
// trace and stream axes, and feed the adoc_stage_seconds{stage} family.
func TestRecordFiltersAndHistograms(t *testing.T) {
	tr, clk, reg := newTestTracer(1, 64)
	t0 := clk.Now()
	tr.Record(TraceContext{ID: 7, Sampled: true}, 1, StageCompress, t0, time.Millisecond, 100, 3)
	tr.Record(TraceContext{ID: 7, Sampled: true}, 2, StageWire, t0, 2*time.Millisecond, 50, 3)
	tr.Record(TraceContext{ID: 9, Sampled: true}, 1, StageDeliver, t0, time.Microsecond, 10, 0)
	tr.Record(TraceContext{ID: 9}, 1, StageReceive, t0, time.Second, 10, 0) // not sampled: dropped

	if got := tr.Total(); got != 3 {
		t.Fatalf("Total() = %d, want 3", got)
	}
	if all := tr.Spans(0, 0); len(all) != 3 {
		t.Fatalf("Spans(0,0) = %d spans, want 3", len(all))
	}
	byTrace := tr.Spans(7, 0)
	if len(byTrace) != 2 || byTrace[0].Stage != StageCompress || byTrace[1].Stage != StageWire {
		t.Fatalf("Spans(7,0) = %+v", byTrace)
	}
	if byTrace[0].Bytes != 100 || byTrace[0].Level != 3 || byTrace[0].Dur != time.Millisecond {
		t.Fatalf("span fields lost: %+v", byTrace[0])
	}
	byStream := tr.Spans(0, 1)
	if len(byStream) != 2 {
		t.Fatalf("Spans(0,1) = %+v", byStream)
	}
	if both := tr.Spans(9, 1); len(both) != 1 || both[0].Stage != StageDeliver {
		t.Fatalf("Spans(9,1) = %+v", both)
	}

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `adoc_stage_seconds_count{stage="compress"} 1`) {
		t.Errorf("compress histogram missing from exposition:\n%s", out)
	}
	if !strings.Contains(out, `adoc_stage_seconds_count{stage="receive"} 0`) {
		t.Errorf("unsampled span leaked into the receive histogram:\n%s", out)
	}
}

// TestSpanRingWraparound: the ring keeps the newest capacity spans,
// oldest-first, while Total keeps counting.
func TestSpanRingWraparound(t *testing.T) {
	const capacity = 4
	tr, clk, _ := newTestTracer(1, capacity)
	for i := 0; i < 10; i++ {
		tr.Record(TraceContext{ID: uint64(i + 1), Sampled: true}, 0, StageQueue,
			clk.Now(), time.Duration(i), i, 0)
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10", got)
	}
	spans := tr.Spans(0, 0)
	if len(spans) != capacity {
		t.Fatalf("ring retained %d spans, want %d", len(spans), capacity)
	}
	for i, s := range spans {
		if want := uint64(10 - capacity + i + 1); s.TraceID != want {
			t.Fatalf("span %d trace ID %d, want %d (oldest-first eviction)", i, s.TraceID, want)
		}
	}
}

// TestFlowTracerZeroAllocDisabled pins the "zero-alloc when disabled"
// claim: neither the unsampled Record fast path nor an unsampled
// SampleNext may allocate.
func TestFlowTracerZeroAllocDisabled(t *testing.T) {
	tr, clk, _ := newTestTracer(1<<30, 8) // batch 1 sampled, then ~never again
	tr.SampleNext()
	t0 := clk.Now()
	if n := testing.AllocsPerRun(100, func() {
		tr.SampleNext()
	}); n != 0 {
		t.Errorf("unsampled SampleNext allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		tr.Record(TraceContext{}, 1, StageWire, t0, time.Millisecond, 10, 0)
	}); n != 0 {
		t.Errorf("unsampled Record allocates %.1f/op", n)
	}
	var nilTr *FlowTracer
	if n := testing.AllocsPerRun(100, func() {
		nilTr.Record(TraceContext{ID: 1, Sampled: true}, 1, StageWire, t0, time.Millisecond, 10, 0)
	}); n != 0 {
		t.Errorf("nil Record allocates %.1f/op", n)
	}
}

// TestFlowTracerConcurrent hammers the span ring from recorders,
// samplers, and readers at once; run with -race this is the data-race
// gate on the tracer.
func TestFlowTracerConcurrent(t *testing.T) {
	tr, _, _ := newTestTracer(2, 128)
	const (
		workers = 8
		perG    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tc := tr.SampleNext()
				tr.Record(tc, uint32(w+1), Stages[i%len(Stages)], tr.Now(), time.Duration(i), i, 0)
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG/10; i++ {
				tr.Spans(0, uint32(w+1))
				tr.Total()
			}
		}(w)
	}
	wg.Wait()
	// Half the batches are sampled; every sampled one recorded a span.
	if got := tr.Total(); got != workers*perG/2 {
		t.Fatalf("Total() = %d, want %d", got, workers*perG/2)
	}
}

// TestAdaptTraceClockStamping: a zero-At event is stamped from the
// injected clock, and an explicit At passes through untouched — the
// deterministic-timestamps contract DES/netsim tests rely on.
func TestAdaptTraceClockStamping(t *testing.T) {
	start := time.Unix(5000, 0)
	clk := clock.NewManual(start)
	tr := NewAdaptTraceClock(4, clk)
	tr.Record(AdaptEvent{From: 0, To: 3, Cause: "queue"})
	clk.Advance(time.Second)
	tr.Record(AdaptEvent{From: 3, To: 1, Cause: "divergence"})
	explicit := time.Unix(42, 0)
	tr.Record(AdaptEvent{At: explicit, From: 1, To: 0, Cause: "pin"})

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("%d events, want 3", len(ev))
	}
	if !ev[0].At.Equal(start) {
		t.Errorf("event 0 stamped %v, want clock start %v", ev[0].At, start)
	}
	if !ev[1].At.Equal(start.Add(time.Second)) {
		t.Errorf("event 1 stamped %v, want %v", ev[1].At, start.Add(time.Second))
	}
	if !ev[2].At.Equal(explicit) {
		t.Errorf("event 2 restamped %v, want explicit %v", ev[2].At, explicit)
	}
}
