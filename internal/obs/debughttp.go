package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// jsonError writes a {"error": ...} body with the given status.
func jsonError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// connList is the /debug/conns list response shape.
type connList struct {
	Total int         `json:"total"`
	Conns []ConnState `json:"conns"`
}

// ConnsHandler serves the registry's connection table as JSON: the full
// list (oldest first) by default, one connection with `?id=N`. Unknown
// IDs get 404, malformed ones 400, both with a JSON error body. A nil
// registry serves the default registry.
func ConnsHandler(r *Registry) http.Handler {
	if r == nil {
		r = Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		table := r.Conns()
		if v := req.URL.Query().Get("id"); v != "" {
			id, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				jsonError(w, http.StatusBadRequest, "malformed id: "+v)
				return
			}
			st, ok := table.Get(id)
			if !ok {
				jsonError(w, http.StatusNotFound, "no such connection: "+v)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(st)
			return
		}
		conns := table.List()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(connList{Total: len(conns), Conns: conns})
	})
}

// EventsHandler streams the registry's event bus as NDJSON: one JSON
// event per line, flushed as published. Filters: `?type=` (event type),
// `?conn=` (connection ID). `?max=N` closes the stream after N events —
// the hook that lets a plain curl in CI terminate. `?replay=0` skips
// the retained recent events (default is to replay them, so a reader
// arriving after the traffic still sees it). Malformed parameters get
// 400 with a JSON error body. A nil registry serves the default
// registry.
func EventsHandler(r *Registry) http.Handler {
	if r == nil {
		r = Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		typeFilter := q.Get("type")
		var connFilter uint64
		if v := q.Get("conn"); v != "" {
			id, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				jsonError(w, http.StatusBadRequest, "malformed conn: "+v)
				return
			}
			connFilter = id
		}
		max := -1
		if v := q.Get("max"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				jsonError(w, http.StatusBadRequest, "malformed max: "+v)
				return
			}
			max = n
		}
		replay := true
		if v := q.Get("replay"); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				jsonError(w, http.StatusBadRequest, "malformed replay: "+v)
				return
			}
			replay = b
		}

		sub := r.Events().Subscribe(256, replay)
		defer sub.Close()

		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if flusher != nil {
			flusher.Flush()
		}
		enc := json.NewEncoder(w)
		sent := 0
		for max < 0 || sent < max {
			ev, ok := sub.Next(req.Context())
			if !ok {
				return
			}
			if typeFilter != "" && ev.Type != typeFilter {
				continue
			}
			if connFilter != 0 && ev.Conn != connFilter {
				continue
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			sent++
		}
	})
}
