package obs

import (
	"os"
	"testing"

	"adoc/internal/testutil"
)

// TestMain runs the package under the goroutine-leak checker: event-bus
// subscribers in particular must not strand goroutines.
func TestMain(m *testing.M) { os.Exit(testutil.RunMain(m)) }
