package obs

import (
	"math"
	"runtime/metrics"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegisterRuntimeMetricsRenders(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	RegisterRuntimeMetrics(reg) // idempotent: GaugeFunc re-registers

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		MetricGoGoroutines,
		MetricGoHeapBytes,
		MetricGoGCPause + `{quantile="0.5"}`,
		MetricGoGCPause + `{quantile="0.99"}`,
		MetricGoGCPause + `{quantile="1"}`,
		MetricGoSchedLatency + `{quantile="0.5"}`,
		MetricBuildInfo + "{go_version=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %s:\n%s", want, out)
		}
	}

	// Live values: goroutines and heap bytes must be positive in any
	// running process; build info is always exactly 1.
	value := func(prefix string) float64 {
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, prefix) {
				v, err := strconv.ParseFloat(l[strings.LastIndexByte(l, ' ')+1:], 64)
				if err == nil {
					return v
				}
			}
		}
		return -1
	}
	if v := value(MetricGoGoroutines + " "); v <= 0 {
		t.Errorf("%s = %v, want > 0", MetricGoGoroutines, v)
	}
	if v := value(MetricGoHeapBytes + " "); v <= 0 {
		t.Errorf("%s = %v, want > 0", MetricGoHeapBytes, v)
	}
	if v := value(MetricBuildInfo + "{"); v != 1 {
		t.Errorf("%s = %v, want 1", MetricBuildInfo, v)
	}
}

func TestRuntimeSamplerCachesReads(t *testing.T) {
	now := time.Unix(1000, 0)
	s := newRuntimeSampler(func() time.Time { return now }, 100*time.Millisecond)
	first := s.heapBytes()
	if first <= 0 {
		t.Fatalf("heapBytes = %v, want > 0", first)
	}
	// Within the TTL the cached samples are reused: even after forcing
	// heap churn the reading cannot change until the clock moves.
	_ = make([]byte, 1<<20)
	if again := s.heapBytes(); again != first {
		t.Fatalf("sampler re-read within TTL: %v != %v", again, first)
	}
	now = now.Add(time.Second)
	s.read() // refresh is allowed now; just exercise the path

	// The histogram-backed quantiles never go negative, whatever the
	// runtime reports.
	if q := s.gcPauseQuantile(0.99); q < 0 {
		t.Errorf("gc pause q0.99 = %v", q)
	}
	if q := s.schedLatencyQuantile(0.5); q < 0 {
		t.Errorf("sched latency q0.5 = %v", q)
	}
}

func TestComputeQuantile(t *testing.T) {
	// Buckets [0,1) [1,2) [2,4) with counts 2, 6, 2: the median falls in
	// the second bucket (upper edge 2), q=1 in the last (upper edge 4).
	h := &metrics.Float64Histogram{
		Counts:  []uint64{2, 6, 2},
		Buckets: []float64{0, 1, 2, 4},
	}
	if got := computeQuantile(h, 0.5); got != 2 {
		t.Errorf("q0.5 = %v, want 2", got)
	}
	if got := computeQuantile(h, 1); got != 4 {
		t.Errorf("q1 = %v, want 4", got)
	}
	if got := computeQuantile(h, 0.1); got != 1 {
		t.Errorf("q0.1 = %v, want 1", got)
	}

	// +Inf upper edge clamps to the bucket's finite lower edge.
	inf := &metrics.Float64Histogram{
		Counts:  []uint64{1, 1},
		Buckets: []float64{0, 8, math.Inf(1)},
	}
	if got := computeQuantile(inf, 1); got != 8 {
		t.Errorf("q1 with +Inf edge = %v, want 8", got)
	}

	// Degenerate inputs read 0.
	if got := computeQuantile(nil, 0.5); got != 0 {
		t.Errorf("nil histogram = %v", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := computeQuantile(empty, 0.5); got != 0 {
		t.Errorf("empty histogram = %v", got)
	}
}

func TestBuildInfoLabels(t *testing.T) {
	goVersion, revision := buildInfoLabels()
	if goVersion == "" || revision == "" {
		t.Fatalf("buildInfoLabels = %q, %q", goVersion, revision)
	}
	if !strings.HasPrefix(goVersion, "go") {
		t.Errorf("go version %q", goVersion)
	}
}
