package obs

import (
	"context"
	"testing"
	"time"
)

func TestEventBusFanOutAndBackpressure(t *testing.T) {
	reg := NewRegistry()
	bus := reg.Events()
	fast := bus.Subscribe(64, false)
	defer fast.Close()
	slow := bus.Subscribe(4, false)
	defer slow.Close()

	const n = 32
	for i := 0; i < n; i++ {
		bus.Publish(Event{Type: EventStream, Conn: 1, Stream: uint32(i), Action: "open"})
	}

	// The fast subscriber sees every event, in order.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		ev, ok := fast.Next(ctx)
		if !ok {
			t.Fatalf("fast subscriber starved at event %d", i)
		}
		if ev.Stream != uint32(i) {
			t.Fatalf("fast subscriber out of order: got stream %d at position %d", ev.Stream, i)
		}
		if ev.Seq == 0 {
			t.Fatal("event published without a sequence number")
		}
		if ev.At.IsZero() {
			t.Fatal("event published without a timestamp")
		}
	}
	if d := fast.Dropped(); d != 0 {
		t.Fatalf("fast subscriber dropped %d events", d)
	}

	// The slow subscriber kept only the newest 4 (drop-oldest) and its
	// losses landed in both its own counter and the registry family.
	for i := 0; i < 4; i++ {
		ev, ok := slow.Next(ctx)
		if !ok {
			t.Fatalf("slow subscriber starved at event %d", i)
		}
		if want := uint32(n - 4 + i); ev.Stream != want {
			t.Fatalf("slow subscriber: got stream %d, want %d (drop-oldest keeps the newest)", ev.Stream, want)
		}
	}
	if d := slow.Dropped(); d != n-4 {
		t.Fatalf("slow.Dropped() = %d, want %d", d, n-4)
	}
	if v := reg.Counter(MetricEventsDropped, "").Value(); v != n-4 {
		t.Fatalf("%s = %d, want %d", MetricEventsDropped, v, n-4)
	}
	if bus.Total() != n {
		t.Fatalf("bus.Total() = %d, want %d", bus.Total(), n)
	}
}

func TestEventBusPublishZeroAllocWithoutSubscribers(t *testing.T) {
	bus := NewRegistry().Events()
	ev := Event{Type: EventAdapt, Conn: 3, From: 1, To: 4, Cause: "queue-rise",
		At: time.Now()} // pre-stamped: time.Now in Publish is also alloc-free, but keep the run pure
	if allocs := testing.AllocsPerRun(1000, func() { bus.Publish(ev) }); allocs != 0 {
		t.Fatalf("Publish with no subscribers allocates %.1f/op, want 0", allocs)
	}
}

func TestEventBusNilSafe(t *testing.T) {
	var bus *EventBus
	bus.Publish(Event{Type: EventDrain}) // must not panic
	if bus.Total() != 0 {
		t.Fatal("nil bus Total")
	}
	var reg *Registry
	if reg.Events() != nil || reg.Conns() != nil {
		t.Fatal("nil registry accessors should return nil")
	}
}

func TestEventBusReplay(t *testing.T) {
	bus := NewRegistry().Events()
	for i := 0; i < 5; i++ {
		bus.Publish(Event{Type: EventStream, Stream: uint32(i)})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	withReplay := bus.Subscribe(16, true)
	defer withReplay.Close()
	for i := 0; i < 5; i++ {
		ev, ok := withReplay.Next(ctx)
		if !ok || ev.Stream != uint32(i) {
			t.Fatalf("replay event %d: ok=%v stream=%d", i, ok, ev.Stream)
		}
	}

	// Without replay the past is invisible: Next blocks until cancel.
	noReplay := bus.Subscribe(16, false)
	defer noReplay.Close()
	short, scancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer scancel()
	if _, ok := noReplay.Next(short); ok {
		t.Fatal("replay=false subscriber saw a pre-subscription event")
	}
}

func TestEventBusReplayRingWraps(t *testing.T) {
	bus := NewRegistry().Events()
	total := eventRetain + 10
	for i := 0; i < total; i++ {
		bus.Publish(Event{Type: EventStream, Stream: uint32(i)})
	}
	sub := bus.Subscribe(eventRetain, true)
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ev, ok := sub.Next(ctx)
	if !ok {
		t.Fatal("no replayed events")
	}
	// The oldest retained event is total-eventRetain, not 0.
	if want := uint32(total - eventRetain); ev.Stream != want {
		t.Fatalf("oldest replayed stream = %d, want %d", ev.Stream, want)
	}
}

func TestEventSubCloseUnblocksAndDrains(t *testing.T) {
	bus := NewRegistry().Events()
	sub := bus.Subscribe(8, false)

	// A blocked Next returns on Close.
	unblocked := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(context.Background())
		unblocked <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	sub.Close()
	select {
	case ok := <-unblocked:
		if ok {
			t.Fatal("Next on a closed empty subscriber returned an event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Next")
	}
	sub.Close() // idempotent

	// Buffered events survive Close and drain before the final false.
	sub2 := bus.Subscribe(8, false)
	bus.Publish(Event{Type: EventDrain, Action: "begin"})
	sub2.Close()
	bus.Publish(Event{Type: EventDrain, Action: "done"}) // after close: not delivered
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ev, ok := sub2.Next(ctx)
	if !ok || ev.Action != "begin" {
		t.Fatalf("closed subscriber should drain its buffer: ok=%v action=%q", ok, ev.Action)
	}
	if _, ok := sub2.Next(ctx); ok {
		t.Fatal("drained closed subscriber should report no more events")
	}
}

func TestEventSubContextCancelUnblocks(t *testing.T) {
	bus := NewRegistry().Events()
	sub := bus.Subscribe(8, false)
	defer sub.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(ctx)
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cancelled Next returned an event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("context cancel did not unblock Next")
	}
}

func TestEventBusConcurrentPublishSubscribe(t *testing.T) {
	bus := NewRegistry().Events()
	stop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				bus.Publish(Event{Type: EventStream, Stream: uint32(i)})
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		sub := bus.Subscribe(4, false)
		if _, ok := sub.Next(ctx); !ok {
			t.Fatal("subscriber starved while publisher active")
		}
		sub.Close()
	}
	close(stop)
	<-pubDone
}
