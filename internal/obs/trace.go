package obs

import (
	"sync"
	"time"

	"adoc/internal/clock"
)

// AdaptEvent is one controller level transition: when it happened, the
// move, and the controller's reason for it ("queue" for the Figure 2
// rule, "divergence" for an EWMA win by a smaller level, "penalty" for
// the forbidden-level filter, "pin"/"bypass" for the incompressible and
// entropy-run pins, "codec" for the capability-mask filter).
type AdaptEvent struct {
	At    time.Time `json:"at"`
	From  int       `json:"from"`
	To    int       `json:"to"`
	Cause string    `json:"cause"`
}

// AdaptTrace is a fixed-size ring of recent level transitions — the
// "why did the tunnel change level" debugging surface a gateway exports
// at /debug/adapt. Safe for concurrent use; Record never blocks beyond
// the mutex and never allocates once the ring is full.
type AdaptTrace struct {
	mu    sync.Mutex
	clk   clock.Clock
	buf   []AdaptEvent
	next  int
	n     int
	total int64
}

// DefaultAdaptTraceSize is the ring capacity NewAdaptTrace(0) selects —
// enough history to see a few adaptation episodes, small enough to dump
// in one HTTP response.
const DefaultAdaptTraceSize = 256

// NewAdaptTrace returns a ring holding the last capacity events
// (0 selects DefaultAdaptTraceSize), stamping zero-At events from the
// wall clock.
func NewAdaptTrace(capacity int) *AdaptTrace {
	return NewAdaptTraceClock(capacity, clock.System)
}

// NewAdaptTraceClock is NewAdaptTrace with an injectable clock, so
// DES/netsim tests get deterministic transition timestamps (nil selects
// clock.System).
func NewAdaptTraceClock(capacity int, clk clock.Clock) *AdaptTrace {
	if capacity <= 0 {
		capacity = DefaultAdaptTraceSize
	}
	if clk == nil {
		clk = clock.System
	}
	return &AdaptTrace{clk: clk, buf: make([]AdaptEvent, capacity)}
}

// Record appends one event, evicting the oldest when full. Events whose
// At is zero are stamped from the trace's clock, so callers never reach
// for time.Now directly.
func (t *AdaptTrace) Record(ev AdaptEvent) {
	if ev.At.IsZero() {
		ev.At = t.clk.Now()
	}
	t.mu.Lock()
	t.buf[t.next] = ev
	t.next = (t.next + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *AdaptTrace) Events() []AdaptEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]AdaptEvent, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Total returns how many events have ever been recorded (including
// evicted ones).
func (t *AdaptTrace) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
