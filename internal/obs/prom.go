package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each with
// its # HELP and # TYPE header, series in registration order.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type familySnap struct {
		f      *family
		series []*series
	}
	snaps := make([]familySnap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		snap := familySnap{f: f}
		for _, key := range f.order {
			snap.series = append(snap.series, f.series[key])
		}
		snaps = append(snaps, snap)
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, snap := range snaps {
		f := snap.f
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, s := range snap.series {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w io.Writer, f *family, s *series) {
	switch f.kind {
	case kindCounter:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels, nil), s.counter.Value())
	case kindGauge:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels, nil), s.gauge.Value())
	case kindCounterFunc, kindGaugeFunc:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(s.labels, nil), formatFloat(s.fn()))
	case kindHistogram:
		h := s.hist
		bounds := h.bounds
		var cum int64
		for i, b := range bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(s.labels, &Label{Name: "le", Value: formatFloat(b)}), cum)
		}
		cum += h.counts[len(bounds)].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelString(s.labels, &Label{Name: "le", Value: "+Inf"}), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(s.labels, nil), formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(s.labels, nil), cum)
	}
}

// labelString renders {a="x",b="y"}; extra (the histogram le label) is
// appended last. Empty label sets render as the empty string.
func labelString(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving r in the text exposition
// format — mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
}
