package obs

import (
	"math"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime self-telemetry families: the process watching every AdOC
// connection is itself watched.
const (
	MetricGoGoroutines   = "adoc_go_goroutines"
	MetricGoHeapBytes    = "adoc_go_heap_bytes"
	MetricGoGCPause      = "adoc_go_gc_pause_seconds"
	MetricGoSchedLatency = "adoc_go_sched_latency_seconds"
	MetricBuildInfo      = "adoc_build_info"
)

// runtime/metrics sample names the bridge reads.
const (
	sampleHeapBytes   = "/memory/classes/heap/objects:bytes"
	sampleGCPauses    = "/sched/pauses/total/gc:seconds"
	sampleSchedLatens = "/sched/latencies:seconds"
)

// runtimeSampler caches one metrics.Read per TTL so a scrape touching
// several adoc_go_* series pays for a single runtime read.
type runtimeSampler struct {
	mu      sync.Mutex
	now     func() time.Time
	ttl     time.Duration
	last    time.Time
	samples []metrics.Sample
}

func newRuntimeSampler(now func() time.Time, ttl time.Duration) *runtimeSampler {
	return &runtimeSampler{
		now: now,
		ttl: ttl,
		samples: []metrics.Sample{
			{Name: sampleHeapBytes},
			{Name: sampleGCPauses},
			{Name: sampleSchedLatens},
		},
	}
}

// read refreshes the cached samples if stale and returns them.
func (s *runtimeSampler) read() []metrics.Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if s.last.IsZero() || now.Sub(s.last) >= s.ttl {
		metrics.Read(s.samples)
		s.last = now
	}
	return s.samples
}

func (s *runtimeSampler) heapBytes() float64 {
	v := s.read()[0].Value
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	return float64(v.Uint64())
}

func (s *runtimeSampler) gcPauseQuantile(q float64) float64 {
	v := s.read()[1].Value
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	return computeQuantile(v.Float64Histogram(), q)
}

func (s *runtimeSampler) schedLatencyQuantile(q float64) float64 {
	v := s.read()[2].Value
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	return computeQuantile(v.Float64Histogram(), q)
}

// computeQuantile walks a runtime/metrics histogram and returns the
// value at quantile q (0 < q <= 1): the upper edge of the first bucket
// whose cumulative count reaches q of the total. Infinite edges clamp
// to the nearest finite edge; an empty histogram reads 0.
func computeQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= target {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			hi := h.Buckets[i+1]
			if !math.IsInf(hi, 1) {
				return hi
			}
			lo := h.Buckets[i]
			if !math.IsInf(lo, -1) {
				return lo
			}
			return 0
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// buildInfoLabels extracts the go version and VCS revision for
// adoc_build_info, falling back to "unknown" outside a module build.
func buildInfoLabels() (goVersion, revision string) {
	goVersion, revision = runtime.Version(), "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	return goVersion, revision
}

// RegisterRuntimeMetrics registers the adoc_go_* self-telemetry
// families and adoc_build_info on r (the default registry when nil):
// heap bytes, GC pause and scheduler-latency quantiles (0.5/0.99/1),
// and the live goroutine count. Idempotent — GaugeFunc re-registration
// replaces the callback.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		r = Default()
	}
	s := newRuntimeSampler(time.Now, 100*time.Millisecond)
	r.GaugeFunc(MetricGoGoroutines, "Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc(MetricGoHeapBytes, "Bytes of allocated heap objects.",
		s.heapBytes)
	for _, q := range []struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.99", 0.99}, {"1", 1}} {
		q := q
		r.GaugeFunc(MetricGoGCPause, "Distribution of stop-the-world GC pause latencies (quantiles).",
			func() float64 { return s.gcPauseQuantile(q.q) }, Label{Name: "quantile", Value: q.label})
		r.GaugeFunc(MetricGoSchedLatency, "Distribution of goroutine scheduling latencies (quantiles).",
			func() float64 { return s.schedLatencyQuantile(q.q) }, Label{Name: "quantile", Value: q.label})
	}
	goVersion, revision := buildInfoLabels()
	r.GaugeFunc(MetricBuildInfo, "Build metadata; value is always 1.",
		func() float64 { return 1 },
		Label{Name: "go_version", Value: goVersion},
		Label{Name: "revision", Value: revision})
}
