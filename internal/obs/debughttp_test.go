package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestConnsHandler(t *testing.T) {
	reg := NewRegistry()
	h := reg.Conns().Register("adocnet", func(st *ConnState) { st.Level = 2 })
	h.SetConfig(ConnConfig{LevelBounds: [2]int{0, 10}})
	srv := httptest.NewServer(ConnsHandler(reg))
	defer srv.Close()

	// Full list.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Total int         `json:"total"`
		Conns []ConnState `json:"conns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Total != 1 || len(list.Conns) != 1 || list.Conns[0].Level != 2 {
		t.Fatalf("list: %+v", list)
	}

	// Drill-down by ID.
	resp, err = http.Get(srv.URL + "?id=1")
	if err != nil {
		t.Fatal(err)
	}
	var st ConnState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Kind != "adocnet" {
		t.Fatalf("drill-down: %+v", st)
	}

	// Unknown ID: 404 with a JSON error body.
	resp, _ = http.Get(srv.URL + "?id=42")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if e.Error == "" {
		t.Fatal("404 without JSON error body")
	}

	// Malformed ID: 400.
	resp, _ = http.Get(srv.URL + "?id=bogus")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed id status = %d", resp.StatusCode)
	}
}

func TestEventsHandlerStreamsNDJSON(t *testing.T) {
	reg := NewRegistry()
	bus := reg.Events()
	bus.Publish(Event{Type: EventHandshake, Conn: 1, Action: "ok"})
	bus.Publish(Event{Type: EventAdapt, Conn: 1, From: 1, To: 3, Cause: "queue-rise"})
	bus.Publish(Event{Type: EventAdapt, Conn: 2, From: 0, To: 1, Cause: "queue-rise"})
	srv := httptest.NewServer(EventsHandler(reg))
	defer srv.Close()

	// ?max terminates the stream after N events (replay on by default).
	resp, err := http.Get(srv.URL + "?max=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(events), events)
	}
	if events[0].Type != EventHandshake || events[1].Cause != "queue-rise" {
		t.Fatalf("events: %+v", events)
	}

	// Type and conn filters.
	resp, err = http.Get(srv.URL + "?max=2&type=" + EventAdapt)
	if err != nil {
		t.Fatal(err)
	}
	body := readLines(t, resp)
	if len(body) != 2 || !strings.Contains(body[0], `"adapt"`) {
		t.Fatalf("type filter: %v", body)
	}

	resp, err = http.Get(srv.URL + "?max=1&conn=2")
	if err != nil {
		t.Fatal(err)
	}
	body = readLines(t, resp)
	if len(body) != 1 || !strings.Contains(body[0], `"conn":2`) {
		t.Fatalf("conn filter: %v", body)
	}

	// replay=0 plus an immediately-cancelled request: no events.
	req, _ := http.NewRequest("GET", srv.URL+"?replay=0&max=1", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req = req.WithContext(ctx)
	resp, err = http.DefaultClient.Do(req)
	if err == nil {
		if lines := readLines(t, resp); len(lines) != 0 {
			t.Fatalf("replay=0 saw past events: %v", lines)
		}
	}

	// Malformed parameters: 400.
	for _, q := range []string{"?conn=x", "?max=0", "?max=x", "?replay=maybe"} {
		resp, _ := http.Get(srv.URL + q)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func readLines(t *testing.T, resp *http.Response) []string {
	t.Helper()
	defer resp.Body.Close()
	var out []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			out = append(out, s)
		}
	}
	return out
}
