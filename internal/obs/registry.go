package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry holds metric families keyed by name. Registration is
// idempotent: asking for an existing series returns the existing
// instance, so any layer can demand its families at construction time
// without coordinating who registers first. Kind or bucket mismatches on
// the same name panic — two packages fighting over one name is a
// programming error, not a runtime condition.
//
// Registries bind per stack the way worker pools do: most code uses
// Default(); a tenant that wants isolated metrics builds its own with
// NewRegistry and threads it through Options.Metrics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	// Live-introspection companions, built lazily so registries used
	// purely for counters pay nothing and exact-format render tests see
	// no extra families until a layer actually asks for them.
	connsOnce  sync.Once
	conns      *ConnTable
	eventsOnce sync.Once
	events     *EventBus
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

type family struct {
	name, help string
	kind       metricKind
	buckets    []float64
	series     map[string]*series
	order      []string // series keys in registration order
}

type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Conns returns the registry's connection-inspection table, creating it
// on first use. Binding the table to the metrics registry means the
// same Options.Metrics plumbing that isolates a tenant's counters also
// isolates its connection view.
func (r *Registry) Conns() *ConnTable {
	if r == nil {
		return nil
	}
	r.connsOnce.Do(func() { r.conns = newConnTable() })
	return r.conns
}

// Events returns the registry's event bus, creating it (and its
// adoc_events_dropped_total counter) on first use.
func (r *Registry) Events() *EventBus {
	if r == nil {
		return nil
	}
	r.eventsOnce.Do(func() {
		r.events = newEventBus(r.Counter(MetricEventsDropped,
			"Events discarded because a /debug/events subscriber's ring was full (drop-oldest)."))
	})
	return r.events
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every stack publishes to
// unless its Options named another.
func Default() *Registry { return defaultRegistry }

// labelKey renders a label set into a canonical map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortLabels returns labels ordered by name, so the same set registered
// in a different order names the same series.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// seriesFor returns (creating if needed) the series for name+labels,
// enforcing kind consistency. Called with r.mu held.
func (r *Registry) seriesFor(name, help string, kind metricKind, buckets []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l.Name, name))
		}
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind.promType(), f.kind.promType()))
	}
	labels = sortLabels(labels)
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels}
		switch kind {
		case kindCounter:
			s.counter = NewCounter()
		case kindGauge:
			s.gauge = NewGauge()
		case kindHistogram:
			s.hist = NewHistogram(buckets)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the family-root counter for name+labels, registering
// it on first use. Owners wanting a per-instance view call Child() on
// the result.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seriesFor(name, help, kindCounter, nil, labels).counter
}

// Gauge returns the family-root gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seriesFor(name, help, kindGauge, nil, labels).gauge
}

// Histogram returns the family-root histogram for name+labels; buckets
// apply on first registration only (nil selects DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seriesFor(name, help, kindHistogram, buckets, labels).hist
}

// CounterFunc registers (or replaces) a callback-backed counter series —
// for owners that already keep their own monotonic count (a buffer
// pool's hit counter) and only need it rendered. The callback must be
// safe for concurrent use and monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesFor(name, help, kindCounterFunc, nil, labels).fn = fn
}

// GaugeFunc registers (or replaces) a callback-backed gauge series — the
// vehicle for instantaneous state that lives in exactly one place (the
// adapt controller's current level, a pool's queue depth). Re-registering
// the same series replaces the callback, so a reconnecting owner can
// re-point it.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesFor(name, help, kindGaugeFunc, nil, labels).fn = fn
}

// Unregister removes one series (and its family once empty). Removing a
// series that does not exist is a no-op. Counters obtained earlier keep
// working — they just stop being rendered.
func (r *Registry) Unregister(name string, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return
	}
	key := labelKey(sortLabels(labels))
	if _, ok := f.series[key]; !ok {
		return
	}
	delete(f.series, key)
	for i, k := range f.order {
		if k == key {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	if len(f.series) == 0 {
		delete(r.families, name)
	}
}
