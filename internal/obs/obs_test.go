package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterChildFeedsRoot(t *testing.T) {
	r := NewRegistry()
	root := r.Counter("adoc_test_total", "help")
	a := root.Child()
	b := root.Child()
	a.Add(3)
	b.Inc()
	if got := a.Value(); got != 3 {
		t.Fatalf("child a = %d, want 3", got)
	}
	if got := b.Value(); got != 1 {
		t.Fatalf("child b = %d, want 1", got)
	}
	if got := root.Value(); got != 4 {
		t.Fatalf("root = %d, want 4", got)
	}
	// Grandchildren chain all the way up.
	aa := a.Child()
	aa.Add(2)
	if root.Value() != 6 || a.Value() != 5 || aa.Value() != 2 {
		t.Fatalf("grandchild chain: root=%d a=%d aa=%d", root.Value(), a.Value(), aa.Value())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("adoc_same_total", "help")
	c2 := r.Counter("adoc_same_total", "other help ignored")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	l1 := r.Counter("adoc_labeled_total", "h", Label{"outcome", "ok"})
	l2 := r.Counter("adoc_labeled_total", "h", Label{"outcome", "err"})
	l3 := r.Counter("adoc_labeled_total", "h", Label{"outcome", "ok"})
	if l1 == l2 {
		t.Fatal("distinct label values shared a series")
	}
	if l1 != l3 {
		t.Fatal("same label value returned a distinct series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("adoc_kind_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("adoc_kind_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "h")
		}()
	}
}

func TestGaugeChildren(t *testing.T) {
	r := NewRegistry()
	root := r.Gauge("adoc_active", "h")
	a := root.Child()
	b := root.Child()
	a.Inc()
	a.Inc()
	b.Inc()
	a.Dec()
	if root.Value() != 2 {
		t.Fatalf("root gauge = %d, want 2", root.Value())
	}
	root.Set(10)
	if root.Value() != 10 {
		t.Fatalf("Set: root = %d, want 10", root.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 0.1, 0.1, 0.01}) // unsorted + dup on purpose
	if got := h.Bounds(); len(got) != 3 || got[0] != 0.01 || got[2] != 1 {
		t.Fatalf("bounds = %v, want [0.01 0.1 1]", got)
	}
	child := h.Child()
	child.Observe(0.005) // bucket le=0.01
	child.Observe(0.05)  // bucket le=0.1
	child.Observe(0.1)   // le bounds are inclusive -> le=0.1
	child.Observe(5)     // +Inf
	if h.Count() != 4 || child.Count() != 4 {
		t.Fatalf("counts: root=%d child=%d, want 4", h.Count(), child.Count())
	}
	wantSum := 0.005 + 0.05 + 0.1 + 5
	if diff := h.Sum() - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	counts := h.BucketCounts()
	want := []int64{1, 2, 0, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", counts, want)
		}
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	root := r.Counter("adoc_conc_total", "h")
	g := r.Gauge("adoc_conc_gauge", "h")
	h := r.Histogram("adoc_conc_seconds", "h", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child()
			gc := g.Child()
			hc := h.Child()
			for j := 0; j < 1000; j++ {
				c.Inc()
				gc.Inc()
				gc.Dec()
				hc.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if root.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", root.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("adoc_b_total", "bytes moved").Add(42)
	r.Counter("adoc_a_total", "with labels", Label{"outcome", "ok"}).Add(7)
	r.Counter("adoc_a_total", "with labels", Label{"outcome", `quo"te`}).Add(1)
	r.Gauge("adoc_g", "a gauge").Set(-3)
	r.GaugeFunc("adoc_fn", "callback gauge", func() float64 { return 2.5 })
	r.CounterFunc("adoc_cfn_total", "callback counter", func() float64 { return 9 })
	h := r.Histogram("adoc_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP adoc_b_total bytes moved\n# TYPE adoc_b_total counter\nadoc_b_total 42\n",
		`adoc_a_total{outcome="ok"} 7`,
		`adoc_a_total{outcome="quo\"te"} 1`,
		"# TYPE adoc_g gauge\nadoc_g -3\n",
		"adoc_fn 2.5\n",
		"# TYPE adoc_cfn_total counter\nadoc_cfn_total 9\n",
		`adoc_lat_seconds_bucket{le="0.1"} 1`,
		`adoc_lat_seconds_bucket{le="1"} 2`,
		`adoc_lat_seconds_bucket{le="+Inf"} 3`,
		"adoc_lat_seconds_sum 2.55\n",
		"adoc_lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	// Families must be sorted by name.
	if strings.Index(out, "adoc_a_total") > strings.Index(out, "adoc_b_total") {
		t.Error("families not sorted by name")
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("adoc_tmp", "h", func() float64 { return 1 }, Label{"id", "a"})
	r.GaugeFunc("adoc_tmp", "h", func() float64 { return 2 }, Label{"id", "b"})
	r.Unregister("adoc_tmp", Label{"id", "a"})
	r.Unregister("adoc_tmp", Label{"id", "nonexistent"}) // no-op
	r.Unregister("adoc_never", Label{"id", "x"})         // no-op
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, `id="a"`) {
		t.Errorf("unregistered series still rendered:\n%s", out)
	}
	if !strings.Contains(out, `id="b"`) {
		t.Errorf("sibling series vanished:\n%s", out)
	}
	r.Unregister("adoc_tmp", Label{"id", "b"})
	b.Reset()
	r.WriteProm(&b)
	if strings.Contains(b.String(), "adoc_tmp") {
		t.Errorf("empty family still rendered:\n%s", b.String())
	}
}

func TestGaugeFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("adoc_repl", "h", func() float64 { return 1 })
	r.GaugeFunc("adoc_repl", "h", func() float64 { return 2 })
	var b strings.Builder
	r.WriteProm(&b)
	if !strings.Contains(b.String(), "adoc_repl 2\n") {
		t.Fatalf("replacement callback not used:\n%s", b.String())
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("adoc_multi_total", "h", Label{"b", "2"}, Label{"a", "1"})
	c2 := r.Counter("adoc_multi_total", "h", Label{"a", "1"}, Label{"b", "2"})
	if c1 != c2 {
		t.Fatal("label order created distinct series")
	}
	var b strings.Builder
	r.WriteProm(&b)
	if !strings.Contains(b.String(), `adoc_multi_total{a="1",b="2"}`) {
		t.Fatalf("labels not rendered in sorted order:\n%s", b.String())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("adoc_http_total", "h").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "adoc_http_total 1") {
		t.Fatalf("body missing counter: %s", buf[:n])
	}
}

func TestAdaptTraceRing(t *testing.T) {
	tr := NewAdaptTrace(3)
	base := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		tr.Record(AdaptEvent{At: base.Add(time.Duration(i) * time.Second), From: i, To: i + 1, Cause: "queue"})
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].From != 2 || evs[2].From != 4 {
		t.Fatalf("wrong window: %+v", evs)
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}

	// Under capacity: oldest-first with no eviction.
	tr2 := NewAdaptTrace(0)
	tr2.Record(AdaptEvent{From: 1, To: 2})
	if got := tr2.Events(); len(got) != 1 || got[0].To != 2 {
		t.Fatalf("partial ring: %+v", got)
	}
}

func TestDetachedConstructors(t *testing.T) {
	c := NewCounter()
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("detached counter broken")
	}
	g := NewGauge()
	g.Add(5)
	g.Dec()
	if g.Value() != 4 {
		t.Fatal("detached gauge broken")
	}
}
