package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"adoc/internal/clock"
)

// Flow tracing decomposes a traced message's trip through the pipeline
// into stages — writer enqueue wait, worker-pool queue wait, compress,
// wire transmit, receive, decompress, in-order delivery — and stitches
// them into per-stream timelines. Tracing is sampled (1 in N send
// batches) and ring-buffered, so the cost with sampling disabled is one
// nil check on the hot path and zero allocations; the cost per sampled
// batch is a handful of clock reads and mutex-guarded copies into a
// preallocated ring.

// MetricStageSeconds is the histogram family fed one observation per
// recorded span, labeled by stage.
const MetricStageSeconds = "adoc_stage_seconds"

// Pipeline stage names. A traced message produces enqueue/queue/
// compress/wire spans on the sending side and receive/decompress/
// deliver spans on the receiving side; StageCall wraps a whole RPC
// call at the adocrpc layer.
const (
	StageEnqueue    = "enqueue"    // writer wait for an in-order emission slot
	StageQueue      = "queue"      // buffer wait in the worker-pool queue
	StageCompress   = "compress"   // codec encode of one adaptation buffer
	StageWire       = "wire"       // group emission onto the transport
	StageReceive    = "receive"    // group arrival off the transport
	StageDecompress = "decompress" // codec decode of one group
	StageDeliver    = "deliver"    // in-order hand-off to the consumer
	StageCall       = "call"       // whole adocrpc call round trip
)

// Stages lists every stage name, in pipeline order.
var Stages = []string{
	StageEnqueue, StageQueue, StageCompress, StageWire,
	StageReceive, StageDecompress, StageDeliver, StageCall,
}

// DefStageBuckets are histogram bounds for pipeline stage durations, in
// seconds. Stages run from microseconds (a queue hand-off) to seconds
// (a WAN group transmit), so the range sits well below
// DefLatencyBuckets.
var DefStageBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// TraceContext identifies one sampled flow. The 8-byte ID plus the
// sampled bit is exactly what crosses the compressed hop in mux batch
// metadata; the zero value means "not sampled" and is what every
// recording call checks first.
type TraceContext struct {
	ID      uint64
	Sampled bool
}

// Span is one timed pipeline stage of a traced flow. StreamID is the
// mux stream (or RPC call stream) the span belongs to, 0 for
// batch-level stages that span a whole engine message.
type Span struct {
	TraceID  uint64        `json:"trace_id"`
	StreamID uint32        `json:"stream_id,omitempty"`
	Stage    string        `json:"stage"`
	Start    time.Time     `json:"start"`
	Dur      time.Duration `json:"dur_ns"`
	Bytes    int           `json:"bytes,omitempty"`
	Level    int           `json:"level,omitempty"`
}

// DefaultFlowTraceSize is the span ring capacity FlowTracerConfig
// selects when Capacity is 0.
const DefaultFlowTraceSize = 4096

// FlowTracerConfig configures a FlowTracer.
type FlowTracerConfig struct {
	// Capacity is the span ring size; 0 selects DefaultFlowTraceSize.
	Capacity int
	// SampleEvery traces 1 in N send batches; <= 0 disables sampling
	// entirely (Enabled reports false, SampleNext never samples).
	SampleEvery int
	// Metrics receives the adoc_stage_seconds{stage} histograms; nil
	// selects Default().
	Metrics *Registry
	// Clock stamps span start times; nil selects clock.System.
	Clock clock.Clock
}

// FlowTracer records sampled pipeline spans into a fixed ring and feeds
// every span's duration into per-stage histograms. All methods are safe
// on a nil receiver (they no-op), so callers thread a possibly-nil
// tracer without guards, and safe for concurrent use.
type FlowTracer struct {
	every uint64
	clk   clock.Clock
	hist  map[string]*Histogram

	batches atomic.Uint64 // send batches offered to SampleNext
	seq     atomic.Uint64 // trace-ID sequence
	seed    uint64

	mu    sync.Mutex
	buf   []Span
	next  int
	n     int
	total int64
}

// NewFlowTracer builds a tracer, registering the stage histograms
// immediately so the families render (at zero) before the first sampled
// span.
func NewFlowTracer(cfg FlowTracerConfig) *FlowTracer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultFlowTraceSize
	}
	every := cfg.SampleEvery
	if every < 0 {
		every = 0
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = Default()
	}
	hist := make(map[string]*Histogram, len(Stages))
	for _, st := range Stages {
		hist[st] = reg.Histogram(MetricStageSeconds,
			"Pipeline stage durations of traced messages, by stage.",
			DefStageBuckets, Label{Name: "stage", Value: st})
	}
	return &FlowTracer{
		every: uint64(every),
		clk:   clk,
		hist:  hist,
		seed:  uint64(clk.Now().UnixNano()),
		buf:   make([]Span, capacity),
	}
}

// Enabled reports whether the tracer samples at all. A nil tracer and a
// SampleEvery <= 0 tracer are both disabled — the one check hot paths
// make before touching the clock.
func (t *FlowTracer) Enabled() bool { return t != nil && t.every > 0 }

// SampleEvery returns the configured 1-in-N cadence (0 = disabled).
func (t *FlowTracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Now reads the tracer's clock; zero time on a nil tracer.
func (t *FlowTracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.clk.Now()
}

// SampleNext makes the per-batch sampling decision: every call counts
// one send batch, and the first of every SampleEvery batches gets a
// fresh sampled TraceContext. The first batch ever offered is sampled,
// so short deterministic tests trace without warm-up.
func (t *FlowTracer) SampleNext() TraceContext {
	if !t.Enabled() {
		return TraceContext{}
	}
	c := t.batches.Add(1)
	if (c-1)%t.every != 0 {
		return TraceContext{}
	}
	return TraceContext{ID: t.newID(), Sampled: true}
}

// newID derives a unique-per-process 8-byte trace ID from the seed and
// a sequence counter (never 0 — 0 marks "no trace" on the wire).
func (t *FlowTracer) newID() uint64 {
	for {
		if id := mix64(t.seed ^ t.seq.Add(1)); id != 0 {
			return id
		}
	}
}

// mix64 is the SplitMix64 finalizer — a cheap bijective scramble.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Record stores one span of a sampled flow and feeds its duration into
// the stage histogram. Unsampled contexts and nil tracers return
// immediately; nothing allocates either way.
func (t *FlowTracer) Record(tc TraceContext, streamID uint32, stage string, start time.Time, dur time.Duration, bytes, level int) {
	if t == nil || !tc.Sampled {
		return
	}
	if h := t.hist[stage]; h != nil {
		h.Observe(dur.Seconds())
	}
	t.mu.Lock()
	t.buf[t.next] = Span{
		TraceID:  tc.ID,
		StreamID: streamID,
		Stage:    stage,
		Start:    start,
		Dur:      dur,
		Bytes:    bytes,
		Level:    level,
	}
	t.next = (t.next + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns retained spans oldest-first, filtered by trace ID and/or
// stream ID (0 = no filter on that axis). Nil tracers return nil.
func (t *FlowTracer) Spans(traceID uint64, streamID uint32) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		s := t.buf[(start+i)%len(t.buf)]
		if traceID != 0 && s.TraceID != traceID {
			continue
		}
		if streamID != 0 && s.StreamID != streamID {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Total returns how many spans have ever been recorded (including ones
// the ring has since evicted).
func (t *FlowTracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
