package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// MetricEventsDropped counts events discarded because a subscriber's
// ring was full (drop-oldest) — the price of a lagging consumer, paid by
// that consumer alone.
const MetricEventsDropped = "adoc_events_dropped_total"

// Event types published on the bus. Action refines the type:
// handshake ok/fail, stream open/accept/close/overflow, bypass
// pin/release, backend healthy/unhealthy, drain begin/done/timeout;
// adapt transitions carry their cause instead of an action.
const (
	EventHandshake = "handshake"
	EventAdapt     = "adapt"
	EventBypass    = "bypass"
	EventBackend   = "backend"
	EventStream    = "stream"
	EventDrain     = "drain"
)

// Event is one structured state change. The struct is flat and passed by
// value so publishing allocates nothing; fields a given type does not
// use stay zero and (with omitempty) off the wire. From and To are adapt
// levels — absent means level 0.
type Event struct {
	// Seq is the bus-wide publication sequence number; gaps in a
	// subscriber's view are events it dropped (or that predate it).
	Seq uint64    `json:"seq"`
	At  time.Time `json:"at"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Conn is the ConnTable ID of the connection the event concerns.
	Conn uint64 `json:"conn,omitempty"`
	// Stream is the mux stream ID for stream events.
	Stream uint32 `json:"stream,omitempty"`
	// Action refines Type (see the type constants).
	Action string `json:"action,omitempty"`
	// From and To are the levels around an adapt transition.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Cause names the control-loop stage (adapt) or probe (backend)
	// behind the event.
	Cause string `json:"cause,omitempty"`
	// Addr is the remote or backend address the event concerns.
	Addr string `json:"addr,omitempty"`
	// Detail carries free-form context: the negotiated string, an error.
	Detail string `json:"detail,omitempty"`
}

// eventRetain is the bus's replay ring size: late subscribers (a curl
// hitting /debug/events after the transfer finished) can still read the
// recent past.
const eventRetain = 256

// EventBus fans typed events out to any number of subscribers, each with
// its own bounded drop-oldest ring — one slow consumer drops its own
// events, never its siblings' and never the publisher's time. With no
// subscriber attached Publish is one atomic add, one lock, and a copy
// into the preallocated replay ring: zero allocations, the same
// discipline as FlowTracer's unsampled path.
type EventBus struct {
	dropped *Counter
	seq     atomic.Uint64

	mu     sync.Mutex
	subs   []*EventSub // copy-on-write: replaced, never mutated in place
	retain []Event     // replay ring for late subscribers
	rHead  int
	rLen   int
}

func newEventBus(dropped *Counter) *EventBus {
	return &EventBus{dropped: dropped, retain: make([]Event, eventRetain)}
}

// Publish stamps ev (sequence, time if unset) and delivers it to every
// subscriber and the replay ring. Safe on a nil bus (no-op) and for
// concurrent use; it never blocks on a slow subscriber.
func (b *EventBus) Publish(ev Event) {
	if b == nil {
		return
	}
	ev.Seq = b.seq.Add(1)
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	b.mu.Lock()
	b.retain[(b.rHead+b.rLen)%len(b.retain)] = ev
	if b.rLen < len(b.retain) {
		b.rLen++
	} else {
		b.rHead = (b.rHead + 1) % len(b.retain)
	}
	subs := b.subs
	b.mu.Unlock()
	// subs is a copy-on-write snapshot: safe to walk unlocked.
	for _, s := range subs {
		s.offer(ev)
	}
}

// Total returns the number of events published over the bus lifetime.
func (b *EventBus) Total() uint64 {
	if b == nil {
		return 0
	}
	return b.seq.Load()
}

// Subscribe attaches a subscriber with a ring of the given capacity
// (<= 0 selects 64). With replay set, the bus's retained recent events
// are preloaded into the ring, so a subscriber arriving after the
// traffic still sees the recent past. Close the subscriber to detach.
func (b *EventBus) Subscribe(capacity int, replay bool) *EventSub {
	if capacity <= 0 {
		capacity = 64
	}
	s := &EventSub{
		bus:  b,
		ring: make([]Event, capacity),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	b.mu.Lock()
	if replay {
		for i := 0; i < b.rLen; i++ {
			s.push(b.retain[(b.rHead+i)%len(b.retain)])
		}
	}
	subs := make([]*EventSub, len(b.subs)+1)
	copy(subs, b.subs)
	subs[len(subs)-1] = s
	b.subs = subs
	b.mu.Unlock()
	return s
}

func (b *EventBus) remove(s *EventSub) {
	b.mu.Lock()
	defer b.mu.Unlock()
	subs := make([]*EventSub, 0, len(b.subs))
	for _, x := range b.subs {
		if x != s {
			subs = append(subs, x)
		}
	}
	b.subs = subs
}

// EventSub is one subscriber's view of the bus: a bounded ring drained
// with Next. When the ring is full the oldest event is dropped (and
// counted) so the newest state always fits.
type EventSub struct {
	bus  *EventBus
	wake chan struct{} // buffered(1) nudge from offer
	done chan struct{} // closed by Close

	mu      sync.Mutex
	ring    []Event
	head, n int
	dropped int64
	closed  bool
}

// offer is the publish-side entry: push and nudge, never block.
func (s *EventSub) offer(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.push(ev)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// push appends under s.mu, dropping the oldest entry when full.
func (s *EventSub) push(ev Event) {
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.dropped++
		if s.bus.dropped != nil {
			s.bus.dropped.Inc()
		}
	}
	s.ring[(s.head+s.n)%len(s.ring)] = ev
	s.n++
}

// Next returns the oldest buffered event, blocking until one arrives,
// the context ends, or the subscriber closes. ok is false only when no
// event will ever come (closed and drained, or ctx done) — a closed
// subscriber first drains what it buffered.
func (s *EventSub) Next(ctx context.Context) (ev Event, ok bool) {
	for {
		s.mu.Lock()
		if s.n > 0 {
			ev := s.ring[s.head]
			s.head = (s.head + 1) % len(s.ring)
			s.n--
			s.mu.Unlock()
			return ev, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, false
		}
		select {
		case <-s.wake:
		case <-s.done:
		case <-ctx.Done():
			return Event{}, false
		}
	}
}

// Dropped returns how many events this subscriber lost to ring overflow.
func (s *EventSub) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscriber. Buffered events remain readable; a
// blocked Next unblocks.
func (s *EventSub) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.bus.remove(s)
}
