package obs

import (
	"sort"
	"sync"
	"time"
)

// ConnTable is the live-connection inspection registry: every open
// engine/session registers a handle at birth and unregisters at close,
// and /debug/conns renders the table on demand. Per-connection data
// lives here, NOT in Prometheus labels, so introspection depth never
// explodes metric cardinality.
type ConnTable struct {
	mu     sync.Mutex
	nextID uint64
	conns  map[uint64]*ConnHandle
}

func newConnTable() *ConnTable {
	return &ConnTable{conns: map[uint64]*ConnHandle{}}
}

// ConnConfig is the negotiated shape of a connection as shown to an
// operator. LevelBounds is [min, max].
type ConnConfig struct {
	Version     int    `json:"version"`
	PacketSize  int    `json:"packet_size"`
	BufferSize  int    `json:"buffer_size"`
	LevelBounds [2]int `json:"level_bounds"`
	Codecs      string `json:"codecs,omitempty"`
	Mux         bool   `json:"mux"`
	Trace       bool   `json:"trace"`
	Dict        bool   `json:"dict"`
}

// ConnTransition is the most recent adapt level change on a connection.
type ConnTransition struct {
	At    time.Time `json:"at"`
	From  int       `json:"from"`
	To    int       `json:"to"`
	Cause string    `json:"cause"`
}

// ConnState is one connection's full introspection snapshot, built
// fresh per request.
type ConnState struct {
	ID            uint64     `json:"id"`
	Kind          string     `json:"kind"`
	LocalAddr     string     `json:"local_addr,omitempty"`
	PeerAddr      string     `json:"peer_addr,omitempty"`
	Config        ConnConfig `json:"config"`
	OpenedAt      time.Time  `json:"opened_at"`
	UptimeSeconds float64    `json:"uptime_seconds"`

	// Engine counters and adapt state, filled by the owning engine.
	MsgsSent         int64   `json:"msgs_sent"`
	MsgsReceived     int64   `json:"msgs_received"`
	RawBytesSent     int64   `json:"raw_bytes_sent"`
	WireBytesSent    int64   `json:"wire_bytes_sent"`
	RawBytesRecv     int64   `json:"raw_bytes_received"`
	WireBytesRecv    int64   `json:"wire_bytes_received"`
	CompressionRatio float64 `json:"compression_ratio"`
	Level            int     `json:"level"`
	PinRemaining     int     `json:"pin_remaining"`
	BypassRun        int     `json:"bypass_run"`

	LastTransition *ConnTransition `json:"last_transition,omitempty"`

	// Streams is the live mux stream count (0 for unmuxed connections).
	Streams int `json:"streams"`
}

// ConnHandle is one registered connection's entry in the table. All
// methods are safe on a nil handle (a no-op stub when no table is
// wired) and for concurrent use. The owning layer mutates it as the
// connection moves through its life: adocnet tags addresses and the
// negotiated config, adocmux the stream counter, gateways/adocrpc the
// kind.
type ConnHandle struct {
	table  *ConnTable
	id     uint64
	opened time.Time

	mu      sync.Mutex
	kind    string
	local   string
	peer    string
	config  ConnConfig
	fill    func(*ConnState)
	streams func() int
}

// Register adds a connection to the table and returns its handle. fill,
// if non-nil, is invoked on every snapshot to populate the engine-owned
// fields (counters, ratio, adapt state); it must be safe to call
// concurrently with the connection's data path. Safe on a nil table
// (returns a nil, still-usable handle).
func (t *ConnTable) Register(kind string, fill func(*ConnState)) *ConnHandle {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	h := &ConnHandle{table: t, id: t.nextID, opened: time.Now(), kind: kind, fill: fill}
	t.conns[h.id] = h
	t.mu.Unlock()
	return h
}

// Len reports how many connections are currently registered.
func (t *ConnTable) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}

// Get snapshots one connection by ID; ok is false if it is not (or no
// longer) registered.
func (t *ConnTable) Get(id uint64) (ConnState, bool) {
	if t == nil {
		return ConnState{}, false
	}
	t.mu.Lock()
	h := t.conns[id]
	t.mu.Unlock()
	if h == nil {
		return ConnState{}, false
	}
	return h.state(time.Now()), true
}

// List snapshots every registered connection, ordered by ID (oldest
// first).
func (t *ConnTable) List() []ConnState {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	handles := make([]*ConnHandle, 0, len(t.conns))
	for _, h := range t.conns {
		handles = append(handles, h)
	}
	t.mu.Unlock()
	sort.Slice(handles, func(i, j int) bool { return handles[i].id < handles[j].id })
	now := time.Now()
	out := make([]ConnState, len(handles))
	for i, h := range handles {
		out[i] = h.state(now)
	}
	return out
}

// ID returns the handle's table-unique connection ID (0 for nil).
func (h *ConnHandle) ID() uint64 {
	if h == nil {
		return 0
	}
	return h.id
}

// SetKind replaces the connection's kind tag; outer layers (mux,
// gateways, rpc) override the tag of the layer beneath them, so the
// table shows the most specific role.
func (h *ConnHandle) SetKind(kind string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.kind = kind
	h.mu.Unlock()
}

// SetAddrs records the local and peer addresses.
func (h *ConnHandle) SetAddrs(local, peer string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.local, h.peer = local, peer
	h.mu.Unlock()
}

// SetConfig records the negotiated configuration.
func (h *ConnHandle) SetConfig(cfg ConnConfig) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.config = cfg
	h.mu.Unlock()
}

// SetStreams installs the live stream-count callback (mux layer).
func (h *ConnHandle) SetStreams(f func() int) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.streams = f
	h.mu.Unlock()
}

// Unregister removes the connection from the table. Idempotent and
// nil-safe.
func (h *ConnHandle) Unregister() {
	if h == nil {
		return
	}
	h.table.mu.Lock()
	delete(h.table.conns, h.id)
	h.table.mu.Unlock()
}

func (h *ConnHandle) state(now time.Time) ConnState {
	h.mu.Lock()
	st := ConnState{
		ID:            h.id,
		Kind:          h.kind,
		LocalAddr:     h.local,
		PeerAddr:      h.peer,
		Config:        h.config,
		OpenedAt:      h.opened,
		UptimeSeconds: now.Sub(h.opened).Seconds(),
	}
	fill, streams := h.fill, h.streams
	h.mu.Unlock()
	// Callbacks run outside h.mu: they read engine/session state that
	// takes its own locks, and holding ours across them invites cycles.
	if fill != nil {
		fill(&st)
	}
	if streams != nil {
		st.Streams = streams()
	}
	return st
}
