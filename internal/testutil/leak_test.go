package testutil

import (
	"strings"
	"testing"
	"time"
)

// TestCheckGoroutinesCatchesLeak proves the checker actually sees a
// deliberately leaked goroutine — and that the report carries its stack.
func TestCheckGoroutinesCatchesLeak(t *testing.T) {
	stop := make(chan struct{})
	go leakyWorker(stop)
	// Give the goroutine time to park so the stack is attributable.
	time.Sleep(10 * time.Millisecond)

	leaked := interestingGoroutines()
	found := false
	for _, g := range leaked {
		if strings.Contains(g, "leakyWorker") {
			found = true
		}
	}
	if !found {
		t.Fatalf("checker missed the planted leak; saw %d goroutines", len(leaked))
	}
	close(stop)

	// And once the leak is released, the suite settles clean (this also
	// exercises the retry loop CheckGoroutines runs at package teardown).
	if report := CheckGoroutines(); report != "" {
		t.Fatalf("settled suite still reports leaks:\n%s", report)
	}
}

func leakyWorker(stop chan struct{}) { <-stop }

// TestIgnoresHarnessGoroutines: a quiet suite must report nothing, even
// though the testing harness itself runs several goroutines.
func TestIgnoresHarnessGoroutines(t *testing.T) {
	if report := CheckGoroutines(); report != "" {
		t.Fatalf("idle check not clean:\n%s", report)
	}
}
