// Package testutil holds shared test harness pieces. Its centerpiece is a
// goroutine-leak checker: transport suites (adocnet, adocmux, adocrpc)
// spin up sessions, pools, servers and pipelines whose teardown paths are
// exactly where regressions hide — a leaked demux loop or worker keeps
// passing byte-identity tests while pinning memory forever. The checker
// snapshots runtime.Stack after the suite runs and fails the package if
// goroutines born in the code under test survive.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredStackFragments marks goroutines that are not leaks: the testing
// harness itself, runtime service goroutines, and the run-forever helpers
// the standard library starts lazily.
var ignoredStackFragments = []string{
	"testing.Main(",
	"testing.(*M).",
	"testing.(*T).Run(",
	"testing.runTests(",
	"testing.runFuzzing(",
	"testing.tRunner(", // a test body itself (the caller's frame)
	"runtime.goexit",   // trailer-only stanza (goroutine already exiting)
	"runtime.MemProfile",
	"runtime/pprof.",
	"runtime/trace.",
	"os/signal.signal_recv",
	"os/signal.loop",
	"created by runtime.gc",
	"runtime.ensureSigM",
	"interestingGoroutines", // the checker's own frame
	// The shared compression worker pool is process-lifetime
	// infrastructure, started lazily on first use and deliberately never
	// torn down — not a per-connection leak.
	"core.(*WorkerPool)",
}

// interestingGoroutines returns the stack stanzas of goroutines that the
// filter does not recognize as harness or runtime infrastructure.
func interestingGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
stanza:
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		body := g
		if i := strings.Index(g, "\n"); i >= 0 {
			body = g[i+1:] // drop the "goroutine N [state]:" header
		}
		if strings.TrimSpace(body) == "" {
			continue
		}
		for _, frag := range ignoredStackFragments {
			if strings.Contains(g, frag) {
				continue stanza
			}
		}
		out = append(out, g)
	}
	return out
}

// leakSettleTimeout bounds how long CheckGoroutines waits for goroutines
// to drain after the suite: teardown is asynchronous (TCP close
// propagation, demux loops noticing EOF), so the checker retries before
// declaring a leak.
const leakSettleTimeout = 5 * time.Second

// CheckGoroutines reports goroutines still alive after the suite settled.
// It returns "" when clean, or a report of the leaked stacks.
func CheckGoroutines() string {
	deadline := time.Now().Add(leakSettleTimeout)
	var leaked []string
	for {
		leaked = interestingGoroutines()
		if len(leaked) == 0 {
			return ""
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d goroutine(s) leaked past suite teardown:\n\n", len(leaked))
	for _, g := range leaked {
		b.WriteString(g)
		b.WriteString("\n\n")
	}
	return b.String()
}

// RunMain wraps testing.M.Run with the leak check — the one-line TestMain
// body for suites that must not leak goroutines:
//
//	func TestMain(m *testing.M) { os.Exit(testutil.RunMain(m)) }
//
// A failing suite reports its own failures; the leak check only runs (and
// can only fail the package) when the tests themselves passed, so a leak
// report is never noise on top of a broken build.
func RunMain(m *testing.M) int {
	code := m.Run()
	if code != 0 {
		return code
	}
	if report := CheckGoroutines(); report != "" {
		fmt.Fprintf(os.Stderr, "goroutine leak check failed:\n%s", report)
		return 1
	}
	return code
}
